"""Tests for the network/chain event-stream layer (PR 2).

Covers, bottom-up:

* :class:`~repro.simnet.network.LinkScheduler` — gap-filling contention
  ordering on shared endpoints;
* :class:`~repro.sched.actors.NetworkActor` / :class:`~repro.sched.actors.ChainActor`
  — transfer streams, block-interval quantisation, consensus delay;
* end-to-end experiments with ``event_streams=True`` (the default since the
  hot-path acceleration pass) — chain-delay accounting inside round records
  and the per-phase communication report;
* the guarantee that opting out with ``event_streams=False`` leaves results
  bit-identical to the constant-cost path of the earliest releases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain.clique import CliqueError, consensus_delay
from repro.core.config import (
    ExperimentConfig,
    cifar10_workload,
    edge_cluster_configs,
    gpu_cluster_configs,
)
from repro.core.results import format_comm_table
from repro.core.runner import ExperimentRunner
from repro.sched.actors import STORAGE_ENDPOINT, TX_COST_S, ChainActor, CommFabric, NetworkActor
from repro.simnet.network import LinkScheduler, NetworkLink, NetworkModel, Topology


def make_network(bandwidth_bytes_per_s: float = 1e6, latency_s: float = 0.0) -> NetworkModel:
    return NetworkModel(
        default_link=NetworkLink(latency_s=latency_s, bandwidth_bytes_per_s=bandwidth_bytes_per_s)
    )


# --------------------------------------------------------------------------- link scheduler
class TestLinkScheduler:
    def test_uncontended_transfer_matches_constant_cost(self):
        network = make_network(bandwidth_bytes_per_s=1e6, latency_s=0.5)
        scheduler = LinkScheduler(network)
        scheduled = scheduler.transfer("a", "b", 1_000_000, at=3.0)
        assert scheduled.started_at == 3.0
        assert scheduled.queued_time == 0.0
        assert scheduled.duration == pytest.approx(network.transfer_time("a", "b", 1_000_000))
        assert scheduled.elapsed == pytest.approx(1.5)

    def test_overlapping_transfers_on_shared_endpoint_serialize(self):
        scheduler = LinkScheduler(make_network())  # 1 MB/s -> 1s per MB
        first = scheduler.transfer("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        second = scheduler.transfer("b", STORAGE_ENDPOINT, 1_000_000, at=0.5)
        assert first.started_at == 0.0 and first.finished_at == pytest.approx(1.0)
        # Second transfer overlaps the storage endpoint: it queues to 1.0.
        assert second.started_at == pytest.approx(1.0)
        assert second.queued_time == pytest.approx(0.5)

    def test_disjoint_endpoints_do_not_contend(self):
        scheduler = LinkScheduler(make_network())
        scheduler.transfer("a", "b", 1_000_000, at=0.0)
        other = scheduler.transfer("c", "d", 1_000_000, at=0.0)
        assert other.started_at == 0.0
        assert other.queued_time == 0.0

    def test_gap_filling_is_causal_not_commit_ordered(self):
        """A transfer requested earlier in sim time slots before one committed
        earlier in *call* order — the atomic-round artifact must not leak."""
        scheduler = LinkScheduler(make_network())
        late = scheduler.transfer("fast", STORAGE_ENDPOINT, 1_000_000, at=100.0)
        early = scheduler.transfer("slow", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        assert late.started_at == 100.0
        assert early.started_at == 0.0  # fits in the gap before t=100
        assert early.queued_time == 0.0

    def test_transfer_queues_into_first_adequate_gap(self):
        scheduler = LinkScheduler(make_network())
        scheduler.transfer("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)   # [0, 1)
        scheduler.transfer("b", STORAGE_ENDPOINT, 1_000_000, at=3.0)   # [3, 4)
        fitted = scheduler.transfer("c", STORAGE_ENDPOINT, 1_000_000, at=0.5)
        assert fitted.started_at == pytest.approx(1.0)  # the [1, 3) gap
        too_big = scheduler.transfer("d", STORAGE_ENDPOINT, 3_000_000, at=0.5)
        assert too_big.started_at == pytest.approx(4.0)  # skips the small gaps

    def test_estimate_does_not_commit(self):
        scheduler = LinkScheduler(make_network())
        elapsed = scheduler.estimate("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        assert elapsed == pytest.approx(1.0)
        assert scheduler.log == []
        assert scheduler.busy_intervals(STORAGE_ENDPOINT) == []
        # Committing after an estimate yields the estimated schedule.
        scheduled = scheduler.transfer("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        assert scheduled.elapsed == pytest.approx(elapsed)

    def test_rejects_negative_request_time(self):
        scheduler = LinkScheduler(make_network())
        with pytest.raises(ValueError):
            scheduler.transfer("a", "b", 10, at=-1.0)

    def test_totals(self):
        scheduler = LinkScheduler(make_network())
        scheduler.transfer("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        scheduler.transfer("b", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        assert scheduler.total_wire_time == pytest.approx(2.0)
        assert scheduler.total_queued_time == pytest.approx(1.0)


# ----------------------------------------------------------------- endpoint capacity (c >= 1)
def max_concurrency(intervals):
    """Largest number of reservations overlapping at any instant."""
    boundaries = []
    for start, end in intervals:
        boundaries.append((start, 1))
        boundaries.append((end, -1))
    boundaries.sort()  # ends before starts at equal times: [a, b) intervals
    active = peak = 0
    for _, delta in boundaries:
        active += delta
        peak = max(peak, active)
    return peak


class TestLinkSchedulerCapacity:
    def test_capacity_admits_exactly_c_overlapping_reservations(self):
        scheduler = LinkScheduler(make_network(), capacities={STORAGE_ENDPOINT: 2})
        first = scheduler.transfer("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        second = scheduler.transfer("b", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        third = scheduler.transfer("c", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        # Two slots: the first two start immediately, the third queues.
        assert first.started_at == 0.0 and second.started_at == 0.0
        assert third.started_at == pytest.approx(1.0)
        assert third.queued_time == pytest.approx(1.0)

    @pytest.mark.parametrize("capacity", [1, 2, 3, 5])
    def test_property_never_more_than_c_overlaps(self, capacity):
        """Property test: random traffic never exceeds the endpoint capacity."""
        rng = np.random.default_rng(capacity)
        scheduler = LinkScheduler(make_network(), capacities={STORAGE_ENDPOINT: capacity})
        for _ in range(120):
            source = f"cluster{rng.integers(0, 12)}"
            at = float(rng.uniform(0.0, 30.0))
            num_bytes = int(rng.integers(100_000, 2_000_000))
            if rng.uniform() < 0.5:
                scheduler.transfer(source, STORAGE_ENDPOINT, num_bytes, at=at)
            else:
                scheduler.transfer(STORAGE_ENDPOINT, source, num_bytes, at=at)
        intervals = scheduler.busy_intervals(STORAGE_ENDPOINT)
        assert len(intervals) == 120
        assert max_concurrency(intervals) <= capacity
        # The capacity is actually used, not just bounded.
        if capacity > 1:
            assert max_concurrency(intervals) == capacity

    def test_capacity_one_is_bit_identical_to_default(self):
        """c=1 must reproduce the serial scheduler's placements exactly."""
        rng = np.random.default_rng(7)
        requests = [
            (f"cluster{rng.integers(0, 6)}", float(rng.uniform(0.0, 20.0)), int(rng.integers(1, 3_000_000)))
            for _ in range(80)
        ]
        default = LinkScheduler(make_network())
        explicit = LinkScheduler(make_network(), capacities={STORAGE_ENDPOINT: 1})
        for source, at, num_bytes in requests:
            default.transfer(source, STORAGE_ENDPOINT, num_bytes, at=at)
            explicit.transfer(source, STORAGE_ENDPOINT, num_bytes, at=at)
        assert default.log == explicit.log

    def test_uncontended_transfer_still_costs_exactly_the_link_time(self):
        network = make_network(bandwidth_bytes_per_s=1e6, latency_s=0.25)
        scheduler = LinkScheduler(network, capacities={STORAGE_ENDPOINT: 4})
        scheduled = scheduler.transfer("a", STORAGE_ENDPOINT, 1_000_000, at=2.0)
        assert scheduled.queued_time == 0.0
        assert scheduled.duration == pytest.approx(network.transfer_time("a", STORAGE_ENDPOINT, 1_000_000))

    def test_capacity_validation(self):
        scheduler = LinkScheduler(make_network())
        with pytest.raises(ValueError):
            scheduler.set_capacity(STORAGE_ENDPOINT, 0)
        with pytest.raises(ValueError):
            LinkScheduler(make_network(), capacities={"x": -1})
        scheduler.set_capacity(STORAGE_ENDPOINT, 3)
        assert scheduler.capacity(STORAGE_ENDPOINT) == 3
        assert scheduler.capacity("elsewhere") == 1


# -------------------------------------------------------------------------------- topology
class TestTopology:
    def build_two_sites(self) -> Topology:
        topology = Topology(
            default_link=NetworkLink(latency_s=0.01, bandwidth_bytes_per_s=10e6),
            default_wan_link=NetworkLink(latency_s=0.04, bandwidth_bytes_per_s=5e6),
        )
        topology.add_replica("site-a", capacity=2)
        topology.add_replica("site-b", capacity=1)
        topology.add_cluster("agg1", "site-a")
        topology.add_cluster("agg2", "site-b", NetworkLink(latency_s=0.02, bandwidth_bytes_per_s=8e6))
        return topology

    def test_home_path_is_the_lan_link(self):
        topology = self.build_two_sites()
        link = topology.path_link("agg2", "site-b")
        assert link.latency_s == 0.02
        assert link.bandwidth_bytes_per_s == 8e6

    def test_remote_path_composes_lan_and_wan(self):
        topology = self.build_two_sites()
        link = topology.path_link("agg2", "site-a")
        # Latencies add; bandwidth is the slower of the two hops.
        assert link.latency_s == pytest.approx(0.02 + 0.04)
        assert link.bandwidth_bytes_per_s == 5e6

    def test_wan_override_is_per_pair(self):
        topology = self.build_two_sites()
        topology.set_wan_link("site-a", "site-b", NetworkLink(latency_s=0.5, bandwidth_bytes_per_s=1e6))
        link = topology.path_link("agg1", "site-b")
        assert link.latency_s == pytest.approx(0.01 + 0.5)
        assert link.bandwidth_bytes_per_s == 1e6
        network = topology.build_network()
        assert network.link("site-a", "site-b").latency_s == 0.5
        assert network.link("site-b", "site-a").latency_s == 0.5

    def test_build_scheduler_applies_capacities(self):
        scheduler = self.build_two_sites().build_scheduler()
        assert scheduler.capacity("site-a") == 2
        assert scheduler.capacity("site-b") == 1
        # Cluster<->replica links are materialised into the network model.
        assert scheduler.network.link("agg2", "site-b").bandwidth_bytes_per_s == 8e6

    def test_builder_validation(self):
        topology = Topology()
        with pytest.raises(ValueError):
            topology.build_network()  # no replicas yet
        topology.add_replica("site-a")
        with pytest.raises(ValueError):
            topology.add_replica("site-a")  # duplicate
        with pytest.raises(ValueError):
            topology.add_replica("site-b", capacity=0)
        with pytest.raises(ValueError):
            topology.add_cluster("agg1", "nowhere")
        topology.add_cluster("agg1", "site-a")
        with pytest.raises(ValueError):
            topology.add_cluster("agg1", "site-a")  # name reuse
        with pytest.raises(ValueError):
            topology.set_wan_link("site-a", "site-a", NetworkLink(0.1, 1e6))
        with pytest.raises(ValueError):
            topology.set_wan_link("site-a", "missing", NetworkLink(0.1, 1e6))


# --------------------------------------------------------------------------- network actor
class TestNetworkActor:
    def test_upload_download_streams_and_phase_totals(self):
        actor = NetworkActor(make_network(), model_bytes=1_000_000)
        up = actor.upload("agg1", 2, at=0.0)
        down = actor.download("agg2", 1, at=10.0)
        assert up == pytest.approx(2.0)    # two sequential 1s transfers
        assert down == pytest.approx(1.0)
        totals = actor.phase_totals()
        assert totals["upload"]["count"] == 2
        assert totals["download"]["count"] == 1
        assert totals["upload"]["time"] == pytest.approx(2.0)
        assert len(actor.transfers("upload")) == 2
        assert actor.transfers("download")[0].source == STORAGE_ENDPOINT

    def test_zero_models_is_free(self):
        actor = NetworkActor(make_network(), model_bytes=1_000_000)
        assert actor.upload("agg1", 0, at=0.0) == 0.0
        assert actor.download("agg1", 0, at=0.0) == 0.0
        assert actor.transfers() == []

    def test_contention_between_clusters_shows_in_elapsed(self):
        actor = NetworkActor(make_network(), model_bytes=1_000_000)
        actor.upload("agg1", 1, at=0.0)
        elapsed = actor.upload("agg2", 1, at=0.0)
        assert elapsed == pytest.approx(2.0)  # 1s queued + 1s wire

    def test_estimate_upload_pure(self):
        actor = NetworkActor(make_network(), model_bytes=1_000_000)
        est = actor.estimate_upload("agg1", at=0.0)
        assert est == pytest.approx(1.0)
        assert actor.transfers() == []

    def test_rejects_nonpositive_model_bytes(self):
        with pytest.raises(ValueError):
            NetworkActor(make_network(), model_bytes=0)


# ------------------------------------------------------------------ replica-aware network actor
class TestNetworkActorReplicas:
    def two_replica_actor(self, selection: str) -> NetworkActor:
        topology = Topology(
            default_link=NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=1e6),
            default_wan_link=NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=1e6),
        )
        topology.add_replica("site-a").add_replica("site-b")
        topology.add_cluster("agg1", "site-a").add_cluster("agg2", "site-b")
        return NetworkActor(topology=topology, model_bytes=1_000_000, selection=selection)

    def test_affinity_routes_to_the_home_replica(self):
        actor = self.two_replica_actor("affinity")
        actor.upload("agg1", 1, at=0.0)
        actor.upload("agg2", 1, at=0.0)
        assert actor.transfers("upload")[0].destination == "site-a"
        assert actor.transfers("upload")[1].destination == "site-b"
        # Different replicas: simultaneous uploads do not contend.
        assert all(t.queued_time == 0.0 for t in actor.transfers())

    def test_least_loaded_spreads_simultaneous_traffic(self):
        actor = self.two_replica_actor("least-loaded")
        actor.upload("agg1", 1, at=0.0)   # both empty -> declaration order: site-a
        actor.upload("agg1", 1, at=0.0)   # site-a now has backlog -> site-b
        destinations = [t.destination for t in actor.transfers("upload")]
        assert destinations == ["site-a", "site-b"]

    def test_least_loaded_accounts_for_capacity_and_path_cost(self):
        """Ranking is estimated completion time: backlog per capacity slot
        *plus* the composed path wire time (an empty remote replica no longer
        beats a strictly faster home replica for free)."""
        topology = Topology(default_link=NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=1e6))
        topology.add_replica("wide", capacity=4).add_replica("narrow", capacity=1)
        topology.add_cluster("agg1", "narrow")
        actor = NetworkActor(topology=topology, model_bytes=1_000_000, selection="least-loaded")
        # Both idle: home narrow costs 1.0s wire, remote wide costs the WAN
        # hop on top (0.05s latency) -> narrow wins despite declaration order.
        actor.upload("agg1", 1, at=0.0)
        assert actor.transfers()[-1].destination == "narrow"
        # Narrow now carries 1s/1 slot + 1.0 wire = 2.0; wide 0 + 1.05 -> wide.
        actor.upload("agg1", 1, at=0.0)
        assert actor.transfers()[-1].destination == "wide"
        # Wide's backlog is divided by its 4 slots: 1.05/4 + 1.05 = 1.31,
        # still cheaper than narrow's 2.0 -> wide again.
        actor.upload("agg1", 1, at=0.0)
        assert actor.transfers()[-1].destination == "wide"

    def test_selection_is_deterministic_between_estimate_and_commit(self):
        actor = self.two_replica_actor("least-loaded")
        actor.upload("agg1", 1, at=0.0)
        estimate = actor.estimate_upload("agg2", at=0.0)
        elapsed = actor.upload("agg2", 1, at=0.0)
        assert elapsed == pytest.approx(estimate)

    def test_replica_totals(self):
        actor = self.two_replica_actor("affinity")
        actor.upload("agg1", 2, at=0.0)
        actor.download("agg2", 1, at=0.0)
        totals = actor.replica_totals()
        assert totals["site-a"]["count"] == 2
        assert totals["site-b"]["count"] == 1
        assert totals["site-a"]["time"] == pytest.approx(2.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            NetworkActor(make_network(), topology=Topology().add_replica("s"))
        with pytest.raises(ValueError):
            NetworkActor(make_network(), selection="random")

    def test_single_endpoint_actor_reports_one_replica(self):
        actor = NetworkActor(make_network(), model_bytes=1_000_000)
        actor.upload("agg1", 1, at=0.0)
        assert actor.replicas == [STORAGE_ENDPOINT]
        assert actor.replica_totals()[STORAGE_ENDPOINT]["count"] == 1


# ----------------------------------------------------------------------------- chain actor
class TestChainActor:
    def test_interaction_rides_next_block_boundary(self):
        actor = ChainActor(block_interval=2.0, consensus_delay=0.25)
        op = actor.interact("submitModel", "agg1", at=1.0)
        # ready at 1.05 -> boundary 2.0 -> final at 2.25
        assert op.block_index == 1
        assert op.sealed_at == pytest.approx(2.25)
        assert op.delay == pytest.approx(1.25)

    def test_interactions_ready_before_same_boundary_share_a_block(self):
        actor = ChainActor(block_interval=2.0)
        first = actor.interact("submitModel", "agg1", at=0.2)
        second = actor.interact("submitScore", "agg2", at=1.3)
        third = actor.interact("submitModel", "agg3", at=2.5)
        assert first.block_index == second.block_index == 1
        assert third.block_index == 2
        assert actor.blocks_spanned == 2

    def test_per_transaction_cost_can_push_past_a_boundary(self):
        actor = ChainActor(block_interval=2.0)
        bundled = actor.interact("submitScore", "agg1", at=1.96, num_transactions=3)
        # ready at 1.96 + 3 * TX_COST_S = 2.11 -> second boundary
        assert bundled.block_index == 2
        assert bundled.sealed_at == pytest.approx(4.0)

    def test_estimate_matches_interact_and_is_pure(self):
        actor = ChainActor(block_interval=2.0, consensus_delay=0.1)
        est = actor.estimate(3.7)
        assert actor.log == []
        op = actor.interact("x", "driver", at=3.7)
        assert op.delay == pytest.approx(est)

    def test_kind_totals(self):
        actor = ChainActor(block_interval=2.0)
        actor.interact("submitModel", "agg1", at=0.0)
        actor.interact("submitModel", "agg2", at=0.5)
        actor.interact("closeSemiRound", "driver", at=1.0)
        totals = actor.kind_totals()
        assert totals["submitModel"]["count"] == 2
        assert totals["closeSemiRound"]["transactions"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ChainActor(block_interval=0.0)
        with pytest.raises(ValueError):
            ChainActor(block_interval=1.0, consensus_delay=-0.1)
        actor = ChainActor(block_interval=1.0)
        with pytest.raises(ValueError):
            actor.interact("x", "a", at=-1.0)

    def test_transaction_ready_exactly_on_a_boundary_seals_there(self):
        """Regression: ``ready % block_interval == 0`` must ride *that*
        boundary, not wait a full extra interval (the old floor+1 bug)."""
        actor = ChainActor(block_interval=2.0, consensus_delay=0.25)
        # 1.95 + TX_COST_S == 2.0 exactly in binary floating point.
        assert 1.95 + TX_COST_S == 2.0
        on_boundary = actor.interact("submitModel", "agg1", at=1.95)
        assert on_boundary.block_index == 1
        assert on_boundary.sealed_at == pytest.approx(2.25)
        assert on_boundary.delay == pytest.approx(0.3)
        # Strictly past the boundary: the next block, as before.
        past = actor.interact("submitModel", "agg2", at=1.96)
        assert past.block_index == 2
        assert past.sealed_at == pytest.approx(4.25)

    def test_consensus_delay_helper(self):
        assert consensus_delay(1, 2.0) == pytest.approx(0.01 + 1.0)
        assert consensus_delay(4, 2.0) == pytest.approx(0.04 + 0.25)
        with pytest.raises(CliqueError):
            consensus_delay(0, 2.0)
        with pytest.raises(CliqueError):
            consensus_delay(3, 0.0)


# ----------------------------------------------------------------------------- comm fabric
class TestCommFabric:
    def make_fabric(self) -> CommFabric:
        return CommFabric(
            NetworkActor(make_network(), model_bytes=1_000_000),
            ChainActor(block_interval=2.0, consensus_delay=0.2),
        )

    def test_estimate_submission_chains_upload_and_finality(self):
        fabric = self.make_fabric()
        est = fabric.estimate_submission("agg1", at=0.0)
        # upload 1s, then chain op at t=1: ready 1.05 -> sealed 2.2 -> delay 1.2
        assert est == pytest.approx(1.0 + 1.2)
        # Pure: the actual submission afterwards matches the estimate.
        store = fabric.upload("agg1", 1, at=0.0)
        chain = fabric.chain_op("submitModel", "agg1", at=store)
        assert store + chain == pytest.approx(est)

    def test_chain_op_with_zero_transactions_is_free(self):
        fabric = self.make_fabric()
        assert fabric.chain_op("submitScore", "agg1", at=0.0, num_transactions=0) == 0.0
        assert fabric.chain.log == []

    def test_summary_keys(self):
        fabric = self.make_fabric()
        fabric.upload("agg1", 1, at=0.0)
        fabric.download("agg1", 2, at=5.0)
        fabric.chain_op("submitModel", "agg1", at=1.0)
        summary = fabric.summary()
        assert summary["upload_count"] == 1
        assert summary["download_count"] == 2
        assert summary["chain_ops_submitModel"] == 1
        assert summary["chain_wait"] > 0
        assert summary["chain_blocks_spanned"] == 1


# ------------------------------------------------------------------------------ end to end
def tiny_config(mode: str, event_streams: bool, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"es-{mode}-{event_streams}",
        workload=cifar10_workload(rounds=2, samples_per_class=10, image_size=8, learning_rate=0.05),
        clusters=edge_cluster_configs(num_clients=2),
        mode=mode,
        rounds=2,
        seed=3,
        event_streams=event_streams,
        **kwargs,
    )


class TestEventStreamExperiments:
    @pytest.mark.parametrize("mode", ["sync", "async", "semi"])
    def test_round_records_carry_chain_delay_accounting(self, mode):
        runner = ExperimentRunner(tiny_config(mode, event_streams=True))
        result = runner.run()
        assert runner.comm is not None
        # Every submitting round paid a real (block-quantised) chain delay.
        submitted_chain_times = [
            record.timing.chain_time
            for aggregator in result.aggregators
            for record in aggregator.history
            if not record.offline and record.timing.store_time > 0
        ]
        assert submitted_chain_times
        assert all(t > 0 for t in submitted_chain_times)
        # The fabric's chain log and the records tell one story: the summed
        # submitModel finality matches what submission rounds were charged.
        fabric_submit_wait = result.comm_metrics["chain_wait_submitModel"]
        assert fabric_submit_wait > 0
        # Per-round timings still sum to each cluster's clock (the books
        # balance even when costs come from the contended fabric).
        for aggregator_result in result.aggregators:
            summed = sum(r.timing.total_time for r in aggregator_result.history)
            assert summed == pytest.approx(aggregator_result.total_time)

    def test_comm_metrics_and_report(self):
        result = ExperimentRunner(tiny_config("async", event_streams=True)).run()
        metrics = result.comm_metrics
        assert metrics["upload_count"] > 0
        assert metrics["download_count"] > 0
        assert metrics["chain_ops"] > 0
        assert metrics["chain_blocks_observed"] > 0
        table = format_comm_table(result)
        assert "network upload" in table and "chain submitModel" in table

    def test_link_bandwidth_cap_creates_contention(self):
        free = ExperimentRunner(tiny_config("async", event_streams=True)).run()
        throttled = ExperimentRunner(
            tiny_config("async", event_streams=True, link_bandwidth_mbytes_per_s=0.05)
        ).run()
        assert throttled.comm_metrics["network_time"] > free.comm_metrics["network_time"]
        assert throttled.comm_metrics["network_queued"] >= free.comm_metrics["network_queued"]
        assert throttled.max_total_time > free.max_total_time

    def test_block_interval_knob_stretches_chain_wait(self):
        fast = ExperimentRunner(tiny_config("async", event_streams=True, block_interval=0.5)).run()
        slow = ExperimentRunner(tiny_config("async", event_streams=True, block_interval=30.0)).run()
        assert slow.comm_metrics["chain_wait"] > fast.comm_metrics["chain_wait"]
        assert slow.max_total_time > fast.max_total_time

    def test_off_mode_attaches_no_fabric_and_stays_identical(self):
        off_runner = ExperimentRunner(tiny_config("async", event_streams=False))
        off_result = off_runner.run()
        assert off_runner.comm is None
        assert all(a.comm is None for a in off_runner.aggregators)
        assert off_result.comm_metrics == {}
        # Same config again: the constant-cost path is deterministic.
        repeat = ExperimentRunner(tiny_config("async", event_streams=False)).run()
        for first, second in zip(off_result.aggregators, repeat.aggregators):
            assert first.total_time == second.total_time
            assert first.global_accuracy == second.global_accuracy
            assert [r.sim_time for r in first.history] == [r.sim_time for r in second.history]

    def test_event_streams_are_the_default(self):
        """Guard on the default flip: a config that says nothing gets the
        event-stream fabric, and results are unchanged from spelling the
        default out explicitly."""
        base = dict(
            name="es-default",
            workload=cifar10_workload(rounds=2, samples_per_class=10, image_size=8),
            clusters=edge_cluster_configs(num_clients=2),
            mode="async",
            rounds=2,
            seed=3,
        )
        config = ExperimentConfig(**base)
        assert config.event_streams is True
        runner = ExperimentRunner(config)
        result = runner.run()
        assert runner.comm is not None
        assert result.comm_metrics["upload_count"] > 0
        explicit = ExperimentRunner(ExperimentConfig(event_streams=True, **base)).run()
        for a, b in zip(result.aggregators, explicit.aggregators):
            assert a.total_time == b.total_time
            assert a.global_accuracy == b.global_accuracy

    def test_cli_default_and_opt_out(self):
        """--no-event-streams is the opt-out; the bare parser defaults on."""
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["run"]).event_streams is True
        assert parser.parse_args(["run", "--no-event-streams"]).event_streams is False
        assert parser.parse_args(["run", "--event-streams"]).event_streams is True

    @pytest.mark.parametrize("mode", ["sync", "semi"])
    def test_event_streams_are_deterministic(self, mode):
        first = ExperimentRunner(tiny_config(mode, event_streams=True)).run()
        second = ExperimentRunner(tiny_config(mode, event_streams=True)).run()
        assert first.comm_metrics == second.comm_metrics
        for a, b in zip(first.aggregators, second.aggregators):
            assert a.total_time == b.total_time

    def test_config_validation_of_stream_knobs(self):
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, link_bandwidth_mbytes_per_s=0.0)
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, link_latency_s=-0.1)
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, block_interval=0.0)
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, storage_replicas=0)
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, replica_capacity=0)
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, replica_selection="round-robin")
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, wan_latency_s=-1.0)
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, wan_bandwidth_mbytes_per_s=0.0)

    def test_deprecated_bandwidth_alias_still_works(self):
        with pytest.warns(DeprecationWarning):
            config = tiny_config("async", event_streams=True, link_bandwidth_mbps=0.25)
        # The deprecated Mbps-named knob feeds the megabytes/s field.
        assert config.link_bandwidth_mbytes_per_s == 0.25
        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            tiny_config("async", event_streams=True, link_bandwidth_mbps=0.0)


def test_format_comm_table_without_streams():
    result = ExperimentRunner(tiny_config("async", event_streams=False)).run()
    assert "event_streams=True" in format_comm_table(result)


# --------------------------------------------------------------- semi-sync release timing
class TestSemiSyncReleaseTiming:
    def test_all_same_round_submitters_resume_at_or_after_release_time(self):
        """Regression: the quorum-triggering cluster must wait for
        closeSemiRound finality exactly like every blocked waiter — it used
        to be reactivated from its own clock, skipping the consensus wait."""
        from repro.core.orchestrator import SemiSyncOrchestrator
        from repro.sched.policies import SemiSyncRoundPolicy

        resumed = []

        class RecordingPolicy(SemiSyncRoundPolicy):
            def _on_submission(self, aggregator, lane=None):
                before = len(self.closures)
                super()._on_submission(aggregator, lane=lane)
                if len(self.closures) > before and aggregator.name not in self._finished:
                    # This cluster's landing closed the round and it resumes.
                    release_time = self.closures[-1][4]
                    resumed.append(("closer", aggregator.name, aggregator.clock.now(), release_time))

            def _close_round(self, reason):
                blocked = [waiter for waiter, _lane in self._blocked.values()]
                release_time = super()._close_round(reason)
                for waiter in blocked:
                    resumed.append(("waiter", waiter.name, waiter.clock.now(), release_time))
                return release_time

        class RecordingOrchestrator(SemiSyncOrchestrator):
            def _build_policy(self, ctx):
                return RecordingPolicy(
                    ctx, quorum_k=self.quorum_k, max_staleness=self.max_staleness
                )

        config = tiny_config("semi", event_streams=True)
        runner = ExperimentRunner(config)
        runner.build()
        orchestration = RecordingOrchestrator(
            runner.chain,
            runner._driver_account,
            runner.aggregators,
            runner.timing_model,
            comm=runner.comm,
        ).run(config.rounds)

        closures = orchestration.extras["closures"]
        # Finality is strictly later than the close in event-stream mode, so
        # the resume assertion below is not vacuous.
        assert any(release > close for _, close, _, _, release in closures)
        closers = [entry for entry in resumed if entry[0] == "closer"]
        assert closers, "no quorum-triggering cluster resumed during the run"
        for _, _, clock_at_resume, release_time in resumed:
            assert clock_at_resume >= release_time - 1e-12

    def test_closures_record_release_time_not_before_close(self):
        result = ExperimentRunner(tiny_config("semi", event_streams=True)).run()
        closures = result.orchestration_extras["closures"]
        assert closures
        for _, close_time, _, _, release_time in closures:
            assert release_time >= close_time


# ----------------------------------------------------------------- topology end to end
def contended_config(**kwargs) -> ExperimentConfig:
    """Four identical GPU clusters on a throttled link: heavy storage contention."""
    return ExperimentConfig(
        name="topo-contended",
        workload=cifar10_workload(rounds=2, samples_per_class=10, image_size=8, learning_rate=0.05),
        clusters=gpu_cluster_configs(num_clusters=4, num_clients=2),
        mode="async",
        rounds=2,
        seed=3,
        event_streams=True,
        link_bandwidth_mbytes_per_s=0.05,
        monitor_resources=False,
        **kwargs,
    )


class TestTopologyExperiments:
    def test_replicas_strictly_reduce_queueing_on_contended_workload(self):
        single = ExperimentRunner(contended_config()).run()
        double = ExperimentRunner(contended_config(storage_replicas=2)).run()
        assert single.comm_metrics["network_queued"] > 0
        for phase in ("upload", "download"):
            assert (
                double.comm_metrics[f"{phase}_queued"]
                <= single.comm_metrics[f"{phase}_queued"]
            )
        assert double.comm_metrics["network_queued"] < single.comm_metrics["network_queued"]
        assert double.max_total_time <= single.max_total_time

    def test_replica_capacity_reduces_queueing(self):
        serial = ExperimentRunner(contended_config()).run()
        parallel = ExperimentRunner(contended_config(replica_capacity=2)).run()
        assert parallel.comm_metrics["network_queued"] < serial.comm_metrics["network_queued"]
        assert parallel.max_total_time <= serial.max_total_time

    def test_per_replica_metrics_and_table(self):
        result = ExperimentRunner(
            contended_config(storage_replicas=2, replica_capacity=2)
        ).run()
        metrics = result.comm_metrics
        assert metrics["storage_replicas"] == 2
        assert metrics["replica_storage-0_count"] > 0
        assert metrics["replica_storage-1_count"] > 0
        total_transfers = metrics["upload_count"] + metrics["download_count"]
        assert (
            metrics["replica_storage-0_count"] + metrics["replica_storage-1_count"]
            == total_transfers
        )
        table = format_comm_table(result)
        assert "replica storage-0" in table and "replica storage-1" in table

    def test_least_loaded_selection_uses_every_replica(self):
        result = ExperimentRunner(
            contended_config(storage_replicas=2, replica_selection="least-loaded")
        ).run()
        metrics = result.comm_metrics
        assert metrics["replica_storage-0_count"] > 0
        assert metrics["replica_storage-1_count"] > 0

    def test_topology_runs_are_deterministic(self):
        first = ExperimentRunner(contended_config(storage_replicas=3, replica_capacity=2)).run()
        second = ExperimentRunner(contended_config(storage_replicas=3, replica_capacity=2)).run()
        assert first.comm_metrics == second.comm_metrics
        for a, b in zip(first.aggregators, second.aggregators):
            assert a.total_time == b.total_time


# ----------------------------------------------------------- fault-free bit identity (PR 7)
class TestFaultFreeBitIdentity:
    """The fault-injection subsystem at defaults is a provable no-op.

    Every mode, with event streams on and off, must produce bit-identical
    results whether the fault/resilience knobs are left alone or spelled out
    at their zero-rate defaults — the guard that adding the scenario engine
    did not perturb a single pre-existing run.
    """

    ALL_MODES = ("sync", "async", "semi", "hierarchical", "gossip")

    @pytest.mark.parametrize("event_streams", [True, False])
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_explicit_zero_fault_knobs_change_nothing(self, mode, event_streams):
        baseline = ExperimentRunner(tiny_config(mode, event_streams)).run()
        explicit = ExperimentRunner(
            tiny_config(
                mode,
                event_streams,
                churn_rate=0.0,
                replica_outages=0,
                wan_partitions=0,
                retry_max=3,
                backoff_base_s=0.5,
                backoff_jitter=0.1,
                breaker_threshold=3,
                breaker_cooldown_s=60.0,
            )
        ).run()
        assert baseline.comm_metrics == explicit.comm_metrics
        for a, b in zip(baseline.aggregators, explicit.aggregators):
            assert a.total_time == b.total_time
            assert a.global_accuracy == b.global_accuracy
            assert a.global_loss == b.global_loss
            assert [r.sim_time for r in a.history] == [r.sim_time for r in b.history]

    def test_zero_knob_configs_build_no_plan(self):
        runner = ExperimentRunner(tiny_config("sync", True, churn_rate=0.0))
        runner.build()
        assert runner.fault_plan is None
        assert runner.comm is not None
        assert runner.comm.network.faults is None

    def test_zero_rate_plan_object_is_a_noop_actor_side(self):
        """Even an explicitly-passed zero FaultPlan leaves the transfer
        stream byte-for-byte identical to faults=None."""
        from repro.simnet.faults import FaultPlan

        def drive(actor: NetworkActor) -> list:
            actor.upload("a", 2, at=0.0)
            actor.download("b", 1, at=0.5)
            actor.upload("b", 1, at=0.6)
            return [
                (t.source, t.destination, t.started_at, t.finished_at)
                for t, _ in actor._events
            ]

        plain = NetworkActor(make_network(), model_bytes=1_000_000)
        zeroed = NetworkActor(
            make_network(), model_bytes=1_000_000, faults=FaultPlan(seed=7)
        )
        assert zeroed.faults is None  # zero plans are discarded at the door
        assert drive(plain) == drive(zeroed)
        assert zeroed.retries == 0 and zeroed.failovers == 0

    def test_fault_free_summary_exports_zeroed_resilience_keys(self):
        result = ExperimentRunner(tiny_config("async", True)).run()
        metrics = result.comm_metrics
        for key in (
            "retries",
            "backoff_wait_s",
            "failovers",
            "breaker_trips",
            "breaker_open_s",
            "breaker_fast_fails",
            "dropped_clients",
            "fault_outage_s",
            "fault_partition_s",
        ):
            assert metrics[key] == 0.0
