"""Tests for the network/chain event-stream layer (PR 2).

Covers, bottom-up:

* :class:`~repro.simnet.network.LinkScheduler` — gap-filling contention
  ordering on shared endpoints;
* :class:`~repro.sched.actors.NetworkActor` / :class:`~repro.sched.actors.ChainActor`
  — transfer streams, block-interval quantisation, consensus delay;
* end-to-end experiments with ``event_streams=True`` — chain-delay accounting
  inside round records and the per-phase communication report;
* the guarantee that ``event_streams=False`` (the default) leaves results
  bit-identical to the constant-cost path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain.clique import CliqueError, consensus_delay
from repro.core.config import ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.results import format_comm_table
from repro.core.runner import ExperimentRunner
from repro.sched.actors import STORAGE_ENDPOINT, TX_COST_S, ChainActor, CommFabric, NetworkActor
from repro.simnet.network import LinkScheduler, NetworkLink, NetworkModel


def make_network(bandwidth_bytes_per_s: float = 1e6, latency_s: float = 0.0) -> NetworkModel:
    return NetworkModel(
        default_link=NetworkLink(latency_s=latency_s, bandwidth_bytes_per_s=bandwidth_bytes_per_s)
    )


# --------------------------------------------------------------------------- link scheduler
class TestLinkScheduler:
    def test_uncontended_transfer_matches_constant_cost(self):
        network = make_network(bandwidth_bytes_per_s=1e6, latency_s=0.5)
        scheduler = LinkScheduler(network)
        scheduled = scheduler.transfer("a", "b", 1_000_000, at=3.0)
        assert scheduled.started_at == 3.0
        assert scheduled.queued_time == 0.0
        assert scheduled.duration == pytest.approx(network.transfer_time("a", "b", 1_000_000))
        assert scheduled.elapsed == pytest.approx(1.5)

    def test_overlapping_transfers_on_shared_endpoint_serialize(self):
        scheduler = LinkScheduler(make_network())  # 1 MB/s -> 1s per MB
        first = scheduler.transfer("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        second = scheduler.transfer("b", STORAGE_ENDPOINT, 1_000_000, at=0.5)
        assert first.started_at == 0.0 and first.finished_at == pytest.approx(1.0)
        # Second transfer overlaps the storage endpoint: it queues to 1.0.
        assert second.started_at == pytest.approx(1.0)
        assert second.queued_time == pytest.approx(0.5)

    def test_disjoint_endpoints_do_not_contend(self):
        scheduler = LinkScheduler(make_network())
        scheduler.transfer("a", "b", 1_000_000, at=0.0)
        other = scheduler.transfer("c", "d", 1_000_000, at=0.0)
        assert other.started_at == 0.0
        assert other.queued_time == 0.0

    def test_gap_filling_is_causal_not_commit_ordered(self):
        """A transfer requested earlier in sim time slots before one committed
        earlier in *call* order — the atomic-round artifact must not leak."""
        scheduler = LinkScheduler(make_network())
        late = scheduler.transfer("fast", STORAGE_ENDPOINT, 1_000_000, at=100.0)
        early = scheduler.transfer("slow", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        assert late.started_at == 100.0
        assert early.started_at == 0.0  # fits in the gap before t=100
        assert early.queued_time == 0.0

    def test_transfer_queues_into_first_adequate_gap(self):
        scheduler = LinkScheduler(make_network())
        scheduler.transfer("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)   # [0, 1)
        scheduler.transfer("b", STORAGE_ENDPOINT, 1_000_000, at=3.0)   # [3, 4)
        fitted = scheduler.transfer("c", STORAGE_ENDPOINT, 1_000_000, at=0.5)
        assert fitted.started_at == pytest.approx(1.0)  # the [1, 3) gap
        too_big = scheduler.transfer("d", STORAGE_ENDPOINT, 3_000_000, at=0.5)
        assert too_big.started_at == pytest.approx(4.0)  # skips the small gaps

    def test_estimate_does_not_commit(self):
        scheduler = LinkScheduler(make_network())
        elapsed = scheduler.estimate("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        assert elapsed == pytest.approx(1.0)
        assert scheduler.log == []
        assert scheduler.busy_intervals(STORAGE_ENDPOINT) == []
        # Committing after an estimate yields the estimated schedule.
        scheduled = scheduler.transfer("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        assert scheduled.elapsed == pytest.approx(elapsed)

    def test_rejects_negative_request_time(self):
        scheduler = LinkScheduler(make_network())
        with pytest.raises(ValueError):
            scheduler.transfer("a", "b", 10, at=-1.0)

    def test_totals(self):
        scheduler = LinkScheduler(make_network())
        scheduler.transfer("a", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        scheduler.transfer("b", STORAGE_ENDPOINT, 1_000_000, at=0.0)
        assert scheduler.total_wire_time == pytest.approx(2.0)
        assert scheduler.total_queued_time == pytest.approx(1.0)


# --------------------------------------------------------------------------- network actor
class TestNetworkActor:
    def test_upload_download_streams_and_phase_totals(self):
        actor = NetworkActor(make_network(), model_bytes=1_000_000)
        up = actor.upload("agg1", 2, at=0.0)
        down = actor.download("agg2", 1, at=10.0)
        assert up == pytest.approx(2.0)    # two sequential 1s transfers
        assert down == pytest.approx(1.0)
        totals = actor.phase_totals()
        assert totals["upload"]["count"] == 2
        assert totals["download"]["count"] == 1
        assert totals["upload"]["time"] == pytest.approx(2.0)
        assert len(actor.transfers("upload")) == 2
        assert actor.transfers("download")[0].source == STORAGE_ENDPOINT

    def test_zero_models_is_free(self):
        actor = NetworkActor(make_network(), model_bytes=1_000_000)
        assert actor.upload("agg1", 0, at=0.0) == 0.0
        assert actor.download("agg1", 0, at=0.0) == 0.0
        assert actor.transfers() == []

    def test_contention_between_clusters_shows_in_elapsed(self):
        actor = NetworkActor(make_network(), model_bytes=1_000_000)
        actor.upload("agg1", 1, at=0.0)
        elapsed = actor.upload("agg2", 1, at=0.0)
        assert elapsed == pytest.approx(2.0)  # 1s queued + 1s wire

    def test_estimate_upload_pure(self):
        actor = NetworkActor(make_network(), model_bytes=1_000_000)
        est = actor.estimate_upload("agg1", at=0.0)
        assert est == pytest.approx(1.0)
        assert actor.transfers() == []

    def test_rejects_nonpositive_model_bytes(self):
        with pytest.raises(ValueError):
            NetworkActor(make_network(), model_bytes=0)


# ----------------------------------------------------------------------------- chain actor
class TestChainActor:
    def test_interaction_rides_next_block_boundary(self):
        actor = ChainActor(block_interval=2.0, consensus_delay=0.25)
        op = actor.interact("submitModel", "agg1", at=1.0)
        # ready at 1.05 -> boundary 2.0 -> final at 2.25
        assert op.block_index == 1
        assert op.sealed_at == pytest.approx(2.25)
        assert op.delay == pytest.approx(1.25)

    def test_interactions_ready_before_same_boundary_share_a_block(self):
        actor = ChainActor(block_interval=2.0)
        first = actor.interact("submitModel", "agg1", at=0.2)
        second = actor.interact("submitScore", "agg2", at=1.3)
        third = actor.interact("submitModel", "agg3", at=2.5)
        assert first.block_index == second.block_index == 1
        assert third.block_index == 2
        assert actor.blocks_spanned == 2

    def test_per_transaction_cost_can_push_past_a_boundary(self):
        actor = ChainActor(block_interval=2.0)
        bundled = actor.interact("submitScore", "agg1", at=1.96, num_transactions=3)
        # ready at 1.96 + 3 * TX_COST_S = 2.11 -> second boundary
        assert bundled.block_index == 2
        assert bundled.sealed_at == pytest.approx(4.0)

    def test_estimate_matches_interact_and_is_pure(self):
        actor = ChainActor(block_interval=2.0, consensus_delay=0.1)
        est = actor.estimate(3.7)
        assert actor.log == []
        op = actor.interact("x", "driver", at=3.7)
        assert op.delay == pytest.approx(est)

    def test_kind_totals(self):
        actor = ChainActor(block_interval=2.0)
        actor.interact("submitModel", "agg1", at=0.0)
        actor.interact("submitModel", "agg2", at=0.5)
        actor.interact("closeSemiRound", "driver", at=1.0)
        totals = actor.kind_totals()
        assert totals["submitModel"]["count"] == 2
        assert totals["closeSemiRound"]["transactions"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ChainActor(block_interval=0.0)
        with pytest.raises(ValueError):
            ChainActor(block_interval=1.0, consensus_delay=-0.1)
        actor = ChainActor(block_interval=1.0)
        with pytest.raises(ValueError):
            actor.interact("x", "a", at=-1.0)

    def test_consensus_delay_helper(self):
        assert consensus_delay(1, 2.0) == pytest.approx(0.01 + 1.0)
        assert consensus_delay(4, 2.0) == pytest.approx(0.04 + 0.25)
        with pytest.raises(CliqueError):
            consensus_delay(0, 2.0)
        with pytest.raises(CliqueError):
            consensus_delay(3, 0.0)


# ----------------------------------------------------------------------------- comm fabric
class TestCommFabric:
    def make_fabric(self) -> CommFabric:
        return CommFabric(
            NetworkActor(make_network(), model_bytes=1_000_000),
            ChainActor(block_interval=2.0, consensus_delay=0.2),
        )

    def test_estimate_submission_chains_upload_and_finality(self):
        fabric = self.make_fabric()
        est = fabric.estimate_submission("agg1", at=0.0)
        # upload 1s, then chain op at t=1: ready 1.05 -> sealed 2.2 -> delay 1.2
        assert est == pytest.approx(1.0 + 1.2)
        # Pure: the actual submission afterwards matches the estimate.
        store = fabric.upload("agg1", 1, at=0.0)
        chain = fabric.chain_op("submitModel", "agg1", at=store)
        assert store + chain == pytest.approx(est)

    def test_chain_op_with_zero_transactions_is_free(self):
        fabric = self.make_fabric()
        assert fabric.chain_op("submitScore", "agg1", at=0.0, num_transactions=0) == 0.0
        assert fabric.chain.log == []

    def test_summary_keys(self):
        fabric = self.make_fabric()
        fabric.upload("agg1", 1, at=0.0)
        fabric.download("agg1", 2, at=5.0)
        fabric.chain_op("submitModel", "agg1", at=1.0)
        summary = fabric.summary()
        assert summary["upload_count"] == 1
        assert summary["download_count"] == 2
        assert summary["chain_ops_submitModel"] == 1
        assert summary["chain_wait"] > 0
        assert summary["chain_blocks_spanned"] == 1


# ------------------------------------------------------------------------------ end to end
def tiny_config(mode: str, event_streams: bool, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"es-{mode}-{event_streams}",
        workload=cifar10_workload(rounds=2, samples_per_class=10, image_size=8, learning_rate=0.05),
        clusters=edge_cluster_configs(num_clients=2),
        mode=mode,
        rounds=2,
        seed=3,
        event_streams=event_streams,
        **kwargs,
    )


class TestEventStreamExperiments:
    @pytest.mark.parametrize("mode", ["sync", "async", "semi"])
    def test_round_records_carry_chain_delay_accounting(self, mode):
        runner = ExperimentRunner(tiny_config(mode, event_streams=True))
        result = runner.run()
        assert runner.comm is not None
        # Every submitting round paid a real (block-quantised) chain delay.
        submitted_chain_times = [
            record.timing.chain_time
            for aggregator in result.aggregators
            for record in aggregator.history
            if not record.offline and record.timing.store_time > 0
        ]
        assert submitted_chain_times
        assert all(t > 0 for t in submitted_chain_times)
        # The fabric's chain log and the records tell one story: the summed
        # submitModel finality matches what submission rounds were charged.
        fabric_submit_wait = result.comm_metrics["chain_wait_submitModel"]
        assert fabric_submit_wait > 0
        # Per-round timings still sum to each cluster's clock (the books
        # balance even when costs come from the contended fabric).
        for aggregator_result in result.aggregators:
            summed = sum(r.timing.total_time for r in aggregator_result.history)
            assert summed == pytest.approx(aggregator_result.total_time)

    def test_comm_metrics_and_report(self):
        result = ExperimentRunner(tiny_config("async", event_streams=True)).run()
        metrics = result.comm_metrics
        assert metrics["upload_count"] > 0
        assert metrics["download_count"] > 0
        assert metrics["chain_ops"] > 0
        assert metrics["chain_blocks_observed"] > 0
        table = format_comm_table(result)
        assert "network upload" in table and "chain submitModel" in table

    def test_link_bandwidth_cap_creates_contention(self):
        free = ExperimentRunner(tiny_config("async", event_streams=True)).run()
        throttled = ExperimentRunner(
            tiny_config("async", event_streams=True, link_bandwidth_mbps=0.05)
        ).run()
        assert throttled.comm_metrics["network_time"] > free.comm_metrics["network_time"]
        assert throttled.comm_metrics["network_queued"] >= free.comm_metrics["network_queued"]
        assert throttled.max_total_time > free.max_total_time

    def test_block_interval_knob_stretches_chain_wait(self):
        fast = ExperimentRunner(tiny_config("async", event_streams=True, block_interval=0.5)).run()
        slow = ExperimentRunner(tiny_config("async", event_streams=True, block_interval=30.0)).run()
        assert slow.comm_metrics["chain_wait"] > fast.comm_metrics["chain_wait"]
        assert slow.max_total_time > fast.max_total_time

    def test_off_mode_attaches_no_fabric_and_stays_identical(self):
        default_runner = ExperimentRunner(tiny_config("async", event_streams=False))
        default_result = default_runner.run()
        assert default_runner.comm is None
        assert all(a.comm is None for a in default_runner.aggregators)
        assert default_result.comm_metrics == {}
        # Same config again: the constant-cost path is deterministic.
        repeat = ExperimentRunner(tiny_config("async", event_streams=False)).run()
        for first, second in zip(default_result.aggregators, repeat.aggregators):
            assert first.total_time == second.total_time
            assert first.global_accuracy == second.global_accuracy
            assert [r.sim_time for r in first.history] == [r.sim_time for r in second.history]

    @pytest.mark.parametrize("mode", ["sync", "semi"])
    def test_event_streams_are_deterministic(self, mode):
        first = ExperimentRunner(tiny_config(mode, event_streams=True)).run()
        second = ExperimentRunner(tiny_config(mode, event_streams=True)).run()
        assert first.comm_metrics == second.comm_metrics
        for a, b in zip(first.aggregators, second.aggregators):
            assert a.total_time == b.total_time

    def test_config_validation_of_stream_knobs(self):
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, link_bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, link_latency_s=-0.1)
        with pytest.raises(ValueError):
            tiny_config("async", event_streams=True, block_interval=0.0)


def test_format_comm_table_without_streams():
    result = ExperimentRunner(tiny_config("async", event_streams=False)).run()
    assert "event_streams=True" in format_comm_table(result)
