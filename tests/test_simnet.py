"""Tests for the testbed simulation: clocks, hardware, network and resources."""

from __future__ import annotations

import pytest

from repro.simnet.clock import SimClock
from repro.simnet.hardware import (
    DOCKER_CONTAINER,
    EDGE_CPU_NODE,
    GPU_NODE,
    JETSON_NANO,
    RASPBERRY_PI_400,
    HardwareProfile,
    available_profiles,
    profile_by_name,
)
from repro.simnet.network import NetworkLink, NetworkModel
from repro.simnet.resources import ResourceMonitor


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_returns_wait(self):
        clock = SimClock(start=5.0)
        waited = clock.advance_to(8.0)
        assert waited == 3.0
        assert clock.now() == 8.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(start=5.0)
        assert clock.advance_to(3.0) == 0.0
        assert clock.now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)


class TestHardwareProfiles:
    def test_gpu_is_fastest(self):
        profiles = [RASPBERRY_PI_400, JETSON_NANO, DOCKER_CONTAINER, EDGE_CPU_NODE, GPU_NODE]
        fastest = max(profiles, key=lambda p: p.samples_per_second)
        assert fastest is GPU_NODE

    def test_raspberry_pi_is_slowest_client(self):
        clients = [RASPBERRY_PI_400, JETSON_NANO, DOCKER_CONTAINER]
        slowest = min(clients, key=lambda p: p.samples_per_second)
        assert slowest is RASPBERRY_PI_400

    def test_training_time_scales_with_samples_and_model(self):
        base = RASPBERRY_PI_400.training_time(100, 2)
        assert RASPBERRY_PI_400.training_time(200, 2) == pytest.approx(2 * base)
        assert RASPBERRY_PI_400.training_time(100, 2, model_scale=3.0) == pytest.approx(3 * base)

    def test_training_time_validation(self):
        with pytest.raises(ValueError):
            GPU_NODE.training_time(-1, 1)
        with pytest.raises(ValueError):
            GPU_NODE.training_time(1, 1, model_scale=0)

    def test_transfer_time_includes_latency(self):
        assert GPU_NODE.transfer_time(0) == pytest.approx(GPU_NODE.latency_s)
        assert GPU_NODE.transfer_time(10_000_000) > GPU_NODE.latency_s

    def test_bandwidth_unit_is_megabytes_per_second(self):
        """Pin the bytes/s conversion: the bandwidth field is mega*bytes*/s
        (1 MB = 1e6 bytes), despite the Mbps look of its former name."""
        profile = HardwareProfile(
            name="unit-probe",
            samples_per_second=1.0,
            bandwidth_mbytes_per_s=8.0,
            latency_s=0.5,
            memory_mb=1.0,
            train_cpu_percent=1.0,
        )
        # 16 MB at 8 MB/s is 2 s of serialisation on top of the latency; a
        # megabit reading (8 Mbit/s = 1 MB/s) would give 16 s instead.
        assert profile.transfer_time(16_000_000) == pytest.approx(0.5 + 2.0)
        assert GPU_NODE.transfer_time(125_000_000) == pytest.approx(GPU_NODE.latency_s + 1.0)

    def test_bandwidth_mbps_is_a_deprecated_alias(self):
        with pytest.warns(DeprecationWarning):
            value = GPU_NODE.bandwidth_mbps
        assert value == GPU_NODE.bandwidth_mbytes_per_s

    def test_lookup_by_name(self):
        assert profile_by_name("jetson-nano") is JETSON_NANO
        with pytest.raises(ValueError):
            profile_by_name("cray")

    def test_available_profiles_contains_all_testbed_devices(self):
        names = set(available_profiles())
        assert {"gpu-node", "edge-cpu-node", "raspberry-pi-400", "jetson-nano", "docker-container"} <= names

    def test_profiles_are_immutable(self):
        with pytest.raises(Exception):
            GPU_NODE.samples_per_second = 1.0  # type: ignore[misc]


class TestNetworkModel:
    def test_default_link_applies(self):
        model = NetworkModel()
        assert model.transfer_time("a", "b", 1000) > 0

    def test_specific_link_overrides_default(self):
        model = NetworkModel()
        slow = NetworkLink(latency_s=1.0, bandwidth_bytes_per_s=1e3)
        model.set_link("a", "b", slow)
        assert model.transfer_time("a", "b", 1000) == pytest.approx(2.0)
        assert model.transfer_time("a", "c", 1000) < 1.0

    def test_symmetric_registration(self):
        model = NetworkModel()
        slow = NetworkLink(latency_s=0.5, bandwidth_bytes_per_s=1e6)
        model.set_link("a", "b", slow)
        assert model.link("b", "a") is slow

    def test_loopback_is_near_free(self):
        model = NetworkModel()
        assert model.transfer_time("a", "a", 10_000_000) < 0.01

    def test_link_validation(self):
        with pytest.raises(ValueError):
            NetworkLink(latency_s=-1.0, bandwidth_bytes_per_s=1.0)
        with pytest.raises(ValueError):
            NetworkLink(latency_s=0.0, bandwidth_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            NetworkLink(0.0, 1.0).transfer_time(-1)


class TestResourceMonitor:
    def test_report_statistics(self):
        monitor = ResourceMonitor()
        for cpu in (10.0, 20.0, 30.0):
            monitor.record("client", cpu, 100.0)
        report = monitor.report("client")
        assert report.cpu_mean == pytest.approx(20.0)
        assert report.mem_mean_mb == pytest.approx(100.0)
        assert report.sample_count == 3

    def test_full_report_covers_all_types(self):
        monitor = ResourceMonitor()
        monitor.record("agg", 5.0, 1000.0)
        monitor.record("scorer", 15.0, 800.0)
        reports = monitor.full_report()
        assert set(reports) == {"agg", "scorer"}

    def test_missing_type_raises(self):
        with pytest.raises(ValueError):
            ResourceMonitor().report("ghost")

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            ResourceMonitor().record("agg", -1.0, 10.0)

    def test_as_dict_keys(self):
        monitor = ResourceMonitor()
        monitor.record("geth", 0.2, 6.0)
        d = monitor.report("geth").as_dict()
        assert {"cpu_mean", "cpu_std", "mem_mean_mb", "mem_std_mb", "sample_count"} == set(d)

    def test_samples_for_filters_by_type(self):
        monitor = ResourceMonitor()
        monitor.record("a", 1.0, 1.0)
        monitor.record("b", 2.0, 2.0)
        assert len(monitor.samples_for("a")) == 1
        assert len(monitor) == 2
