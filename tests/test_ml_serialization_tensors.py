"""Tests for weight serialization and tensor utilities (with property tests)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.ml.serialization import (
    SerializationError,
    weights_checksum,
    weights_from_bytes,
    weights_to_bytes,
)
from repro.ml.tensor_utils import (
    add_weights,
    average_weights,
    clip_weights,
    flatten_weights,
    scale_weights,
    subtract_weights,
    total_parameter_count,
    unflatten_weights,
    weights_allclose,
    weights_distance,
    weights_norm,
    zeros_like_weights,
)


def small_weight_lists():
    """Hypothesis strategy producing small lists of float arrays."""
    array = npst.arrays(
        dtype=np.float64,
        shape=npst.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
    return st.lists(array, min_size=1, max_size=4)


class TestSerialization:
    @settings(max_examples=25, deadline=None)
    @given(small_weight_lists())
    def test_round_trip_preserves_values(self, weights):
        restored = weights_from_bytes(weights_to_bytes(weights))
        assert len(restored) == len(weights)
        for a, b in zip(weights, restored):
            assert a.shape == b.shape
            assert np.allclose(a, b)

    def test_empty_list_round_trip(self):
        assert weights_from_bytes(weights_to_bytes([])) == []

    def test_checksum_stable(self):
        weights = [np.arange(6.0).reshape(2, 3)]
        assert weights_checksum(weights) == weights_checksum([w.copy() for w in weights])

    def test_checksum_changes_with_values(self):
        a = [np.zeros((2, 2))]
        b = [np.ones((2, 2))]
        assert weights_checksum(a) != weights_checksum(b)

    def test_rejects_garbage(self):
        with pytest.raises(SerializationError):
            weights_from_bytes(b"not a weight container")

    def test_rejects_truncated_payload(self):
        payload = weights_to_bytes([np.ones((4, 4))])
        with pytest.raises(SerializationError):
            weights_from_bytes(payload[:-10])

    def test_rejects_trailing_bytes(self):
        payload = weights_to_bytes([np.ones(3)])
        with pytest.raises(SerializationError):
            weights_from_bytes(payload + b"xx")

    def test_int_arrays_supported(self):
        weights = [np.arange(4, dtype=np.int64), np.arange(3, dtype=np.int32)]
        restored = weights_from_bytes(weights_to_bytes(weights))
        assert restored[0].dtype == np.int64
        assert restored[1].dtype == np.int32

    def test_unsupported_dtype_coerced(self):
        weights = [np.ones(3, dtype=np.float16)]
        restored = weights_from_bytes(weights_to_bytes(weights))
        assert restored[0].dtype == np.float64


class TestTensorUtils:
    @settings(max_examples=25, deadline=None)
    @given(small_weight_lists())
    def test_flatten_unflatten_round_trip(self, weights):
        flat = flatten_weights(weights)
        restored = unflatten_weights(flat, weights)
        assert weights_allclose(weights, restored)

    def test_flatten_empty(self):
        assert flatten_weights([]).size == 0

    def test_unflatten_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            unflatten_weights(np.zeros(5), [np.zeros((2, 2))])

    def test_add_subtract_inverse(self):
        a = [np.array([1.0, 2.0]), np.array([[3.0]])]
        b = [np.array([0.5, 0.5]), np.array([[1.0]])]
        assert weights_allclose(subtract_weights(add_weights(a, b), b), a)

    def test_scale(self):
        a = [np.array([2.0, 4.0])]
        assert np.allclose(scale_weights(a, 0.5)[0], [1.0, 2.0])

    def test_average_uniform(self):
        a = [np.array([0.0])]
        b = [np.array([2.0])]
        assert np.allclose(average_weights([a, b])[0], [1.0])

    def test_average_weighted(self):
        a = [np.array([0.0])]
        b = [np.array([4.0])]
        avg = average_weights([a, b], coefficients=[3, 1])
        assert np.allclose(avg[0], [1.0])

    def test_average_rejects_empty(self):
        with pytest.raises(ValueError):
            average_weights([])

    def test_average_rejects_zero_coefficients(self):
        with pytest.raises(ValueError):
            average_weights([[np.zeros(1)]], coefficients=[0.0])

    def test_average_rejects_mismatched_coefficients(self):
        with pytest.raises(ValueError):
            average_weights([[np.zeros(1)]], coefficients=[1.0, 2.0])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            add_weights([np.zeros(2)], [np.zeros(3)])

    def test_norm_and_distance(self):
        a = [np.array([3.0, 4.0])]
        assert weights_norm(a) == pytest.approx(5.0)
        assert weights_distance(a, zeros_like_weights(a)) == pytest.approx(5.0)

    @settings(max_examples=25, deadline=None)
    @given(small_weight_lists())
    def test_distance_to_self_is_zero(self, weights):
        assert weights_distance(weights, weights) == pytest.approx(0.0)

    def test_clip_reduces_large_norm(self):
        a = [np.array([30.0, 40.0])]
        clipped = clip_weights(a, max_norm=5.0)
        assert weights_norm(clipped) == pytest.approx(5.0)

    def test_clip_leaves_small_norm(self):
        a = [np.array([0.3, 0.4])]
        clipped = clip_weights(a, max_norm=5.0)
        assert weights_allclose(a, clipped)

    def test_clip_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            clip_weights([np.ones(2)], 0.0)

    def test_total_parameter_count(self):
        assert total_parameter_count([np.zeros((2, 3)), np.zeros(5)]) == 11

    def test_allclose_detects_shape_difference(self):
        assert not weights_allclose([np.zeros(2)], [np.zeros(3)])
        assert not weights_allclose([np.zeros(2)], [np.zeros(2), np.zeros(2)])

    @settings(max_examples=25, deadline=None)
    @given(small_weight_lists(), st.floats(0.1, 10.0))
    def test_norm_scales_linearly(self, weights, factor):
        scaled = scale_weights(weights, factor)
        assert weights_norm(scaled) == pytest.approx(factor * weights_norm(weights), rel=1e-6, abs=1e-9)
