"""Property test: the optimized LinkScheduler equals the from-scratch reference.

Every acceleration inside :class:`repro.simnet.network.LinkScheduler` — the
per-epoch plan memo, the dirty-flagged saturation and backlog caches, the
tail-append fast path, the running totals — must be invisible: randomized
transfer workloads driven through the optimized scheduler and through
:class:`repro.simnet.reference.ReferenceLinkScheduler` have to produce
bit-identical placements, backlog readings and queued/wire-time totals.
Exact ``==`` throughout; no tolerances.
"""

from __future__ import annotations

import random

import pytest

from repro.simnet.network import LinkScheduler, NetworkLink, NetworkModel
from repro.simnet.reference import ReferenceLinkScheduler


def _build_pair(seed: int, num_endpoints: int, max_capacity: int):
    rng = random.Random(seed)
    network = NetworkModel(
        default_link=NetworkLink(latency_s=0.002, bandwidth_bytes_per_s=50e6)
    )
    endpoints = [f"e{i}" for i in range(num_endpoints)]
    capacities = {name: rng.randint(1, max_capacity) for name in endpoints}
    fast = LinkScheduler(network, capacities=dict(capacities))
    slow = ReferenceLinkScheduler(network, capacities=dict(capacities))
    return rng, endpoints, fast, slow


def _random_workload(rng, endpoints, fast, slow, operations: int):
    """Drive both schedulers through one interleaved random op stream."""
    now = 0.0
    for _ in range(operations):
        op = rng.random()
        source = rng.choice(endpoints)
        destination = rng.choice(endpoints)
        num_bytes = rng.randint(1, 60_000_000)
        # Mostly forward-moving time with occasional jumps back, so both the
        # tail-append fast path and the into-the-schedule placements run.
        now = max(0.0, now + rng.uniform(-2.0, 6.0))
        floor = now + rng.uniform(0.0, 3.0) if rng.random() < 0.3 else None
        if op < 0.35:
            a = fast.estimate(source, destination, num_bytes, now)
            b = slow.estimate(source, destination, num_bytes, now)
            assert a == b
            # Repeat at the same epoch: the memoized answer must not drift.
            assert fast.estimate(source, destination, num_bytes, now) == a
        elif op < 0.5:
            a = fast.preview(source, destination, num_bytes, now, earliest_start=floor)
            b = slow.preview(source, destination, num_bytes, now, earliest_start=floor)
            assert a == b
        elif op < 0.65:
            probe = rng.choice(endpoints)
            at = max(0.0, now + rng.uniform(-4.0, 4.0))
            assert fast.outstanding_backlog(probe, at) == slow.outstanding_backlog(probe, at)
        else:
            a = fast.transfer(source, destination, num_bytes, now, earliest_start=floor)
            b = slow.transfer(source, destination, num_bytes, now, earliest_start=floor)
            assert a == b
        assert fast.total_queued_time == slow.total_queued_time
        assert fast.total_wire_time == slow.total_wire_time


@pytest.mark.parametrize("seed", range(8))
def test_randomized_equivalence(seed):
    rng, endpoints, fast, slow = _build_pair(seed, num_endpoints=5, max_capacity=4)
    _random_workload(rng, endpoints, fast, slow, operations=220)
    assert fast.log == slow.log
    for endpoint in endpoints:
        assert fast.busy_intervals(endpoint) == slow.busy_intervals(endpoint)


def test_serial_only_equivalence():
    """All-serial endpoints exercise the capacity-1 placement path."""
    rng, endpoints, fast, slow = _build_pair(seed=99, num_endpoints=4, max_capacity=1)
    _random_workload(rng, endpoints, fast, slow, operations=200)
    assert fast.log == slow.log


def test_estimate_then_commit_reuses_plan():
    """The estimate-then-transfer pattern commits exactly the previewed slot."""
    network = NetworkModel()
    fast = LinkScheduler(network, capacities={"storage": 2})
    planned = fast.preview("c0", "storage", 10_000_000, 5.0)
    epoch_before = fast.epoch
    committed = fast.transfer("c0", "storage", 10_000_000, 5.0)
    assert committed == planned
    assert fast.epoch == epoch_before + 1
    # A new query after the commit replans against the grown schedule.
    assert fast.preview("c1", "storage", 10_000_000, 5.0).started_at >= 5.0


def test_capacity_change_invalidates_placement_memo():
    fast = LinkScheduler(NetworkModel())
    slow = ReferenceLinkScheduler(NetworkModel())
    for sched in (fast, slow):
        sched.transfer("a", "b", 30_000_000, 0.0)
    before_fast = fast.estimate("a", "b", 30_000_000, 0.0)
    before_slow = slow.estimate("a", "b", 30_000_000, 0.0)
    assert before_fast == before_slow
    for sched in (fast, slow):
        sched.set_capacity("c", 3)
        sched.transfer("a", "c", 30_000_000, 0.0)
    assert fast.estimate("a", "b", 30_000_000, 0.0) == slow.estimate("a", "b", 30_000_000, 0.0)


def test_running_totals_match_log_sums():
    rng, endpoints, fast, _ = _build_pair(seed=7, num_endpoints=3, max_capacity=3)
    now = 0.0
    for _ in range(150):
        now += rng.uniform(0.0, 2.0)
        fast.transfer(rng.choice(endpoints), rng.choice(endpoints), rng.randint(1, 40_000_000), now)
    assert fast.total_queued_time == sum(t.queued_time for t in fast.log)
    assert fast.total_wire_time == sum(t.duration for t in fast.log)
