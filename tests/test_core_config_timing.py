"""Tests for experiment configuration and the timing model."""

from __future__ import annotations

import pytest

from repro.core.config import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
    cifar10_workload,
    edge_cluster_configs,
    gpu_cluster_configs,
    tiny_imagenet_workload,
)
from repro.core.timing import ClusterTimingModel, RoundTiming
from repro.simnet.hardware import GPU_NODE, JETSON_NANO, RASPBERRY_PI_400


class TestWorkloadConfig:
    def test_cifar10_matches_paper_hyperparameters(self):
        workload = cifar10_workload()
        assert workload.learning_rate == 0.01
        assert workload.local_epochs == 2
        assert workload.batch_size == 5
        assert workload.num_classes == 10
        assert workload.reference_parameters == 62_000

    def test_tiny_imagenet_matches_paper_hyperparameters(self):
        workload = tiny_imagenet_workload()
        assert workload.learning_rate == 0.01
        assert workload.local_epochs == 2
        assert workload.batch_size == 8  # scaled from 64 for the synthetic substrate
        assert workload.reference_parameters == 138_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(name="x", model="cnn", dataset="cifar10", num_classes=10, rounds=0)
        with pytest.raises(ValueError):
            WorkloadConfig(name="x", model="cnn", dataset="cifar10", num_classes=10, learning_rate=0.0)


class TestClusterConfig:
    def test_defaults(self):
        cluster = ClusterConfig(name="agg1")
        assert cluster.num_clients == 3
        assert cluster.strategy == "fedavg"
        assert not cluster.malicious

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(name="agg1", num_clients=0)
        with pytest.raises(ValueError):
            ClusterConfig(name="agg1", policy_k=0)


class TestExperimentConfig:
    def test_valid_config(self, tiny_workload):
        config = ExperimentConfig(
            name="ok", workload=tiny_workload, clusters=edge_cluster_configs(), rounds=2
        )
        assert config.num_clusters == 3

    def test_rejects_bad_mode(self, tiny_workload):
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", workload=tiny_workload, clusters=edge_cluster_configs(), mode="eventual")

    def test_rejects_multikrum_in_async(self, tiny_workload):
        with pytest.raises(ValueError):
            ExperimentConfig(
                name="x",
                workload=tiny_workload,
                clusters=edge_cluster_configs(),
                mode="async",
                scoring_algorithm="multikrum",
            )

    def test_rejects_duplicate_cluster_names(self, tiny_workload):
        clusters = [ClusterConfig(name="agg1"), ClusterConfig(name="agg1")]
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", workload=tiny_workload, clusters=clusters)

    def test_rejects_empty_clusters(self, tiny_workload):
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", workload=tiny_workload, clusters=[])


class TestClusterFactories:
    def test_gpu_cluster_configs(self):
        clusters = gpu_cluster_configs(num_clusters=4)
        assert len(clusters) == 4
        assert all(c.aggregator_profile is GPU_NODE for c in clusters)
        assert len({c.name for c in clusters}) == 4

    def test_gpu_cluster_custom_strategies_and_policies(self):
        clusters = gpu_cluster_configs(
            num_clusters=2,
            strategies=["fedavg", "fedyogi"],
            policies=[("top_k", 2), ("all", 1)],
            scoring_policies=["max", "mean"],
        )
        assert clusters[1].strategy == "fedyogi"
        assert clusters[0].aggregation_policy == "top_k"
        assert clusters[0].scoring_policy == "max"

    def test_edge_cluster_heterogeneous_clients(self):
        clusters = edge_cluster_configs()
        profiles = [c.client_profile for c in clusters]
        assert RASPBERRY_PI_400 in profiles and JETSON_NANO in profiles
        assert len(clusters) == 3


class TestTimingModel:
    def test_round_timing_totals(self):
        timing = RoundTiming(pull_time=1.0, client_training_time=5.0, scoring_time=2.0, idle_time=3.0)
        assert timing.active_time == pytest.approx(8.0)
        assert timing.total_time == pytest.approx(11.0)

    def test_compute_scale_grows_with_model_size(self):
        small = ClusterTimingModel(cifar10_workload())
        large = ClusterTimingModel(tiny_imagenet_workload())
        assert small.compute_scale == pytest.approx(1.0)
        assert large.compute_scale > 5.0

    def test_slow_hardware_trains_slower(self):
        timing = ClusterTimingModel(cifar10_workload(), seed=0)
        pi_cluster = ClusterConfig(name="pi", client_profile=RASPBERRY_PI_400)
        jetson_cluster = ClusterConfig(name="jetson", client_profile=JETSON_NANO)
        assert timing.client_training_time(pi_cluster, jitter=False) > timing.client_training_time(
            jetson_cluster, jitter=False
        )

    def test_jitter_changes_but_stays_close(self):
        timing = ClusterTimingModel(cifar10_workload(), seed=1)
        cluster = ClusterConfig(name="pi", client_profile=RASPBERRY_PI_400)
        base = timing.client_training_time(cluster, jitter=False)
        jittered = [timing.client_training_time(cluster) for _ in range(20)]
        assert any(abs(j - base) > 1e-9 for j in jittered)
        assert all(0.5 * base < j < 2.0 * base for j in jittered)

    def test_transfer_time_scales_with_model_size(self):
        small = ClusterTimingModel(cifar10_workload())
        large = ClusterTimingModel(tiny_imagenet_workload())
        assert large.transfer_time(GPU_NODE) > small.transfer_time(GPU_NODE)

    def test_scoring_time_zero_for_no_models(self):
        timing = ClusterTimingModel(cifar10_workload())
        cluster = ClusterConfig(name="a")
        assert timing.scoring_time(cluster, 0) == 0.0

    def test_multikrum_scoring_cheaper_than_accuracy(self):
        timing = ClusterTimingModel(tiny_imagenet_workload())
        cluster = ClusterConfig(name="a", aggregator_profile=GPU_NODE)
        assert timing.scoring_time(cluster, 3, "multikrum") < timing.scoring_time(cluster, 3, "accuracy")

    def test_sync_windows_exceed_expected_work(self):
        workload = cifar10_workload()
        timing = ClusterTimingModel(workload, seed=0)
        clusters = edge_cluster_configs()
        window = timing.expected_training_window(clusters)
        slowest = max(timing.client_training_time(c, jitter=False) for c in clusters)
        assert window > slowest

    def test_chain_interaction_includes_block_period(self):
        timing = ClusterTimingModel(cifar10_workload(), block_period=2.0)
        assert timing.chain_interaction_time(1) >= 2.0
