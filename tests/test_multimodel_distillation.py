"""Tests for knowledge distillation and multi-model collaboration (§5 Q1 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multimodel import MultiModelCollaboration, MultiModelParticipant
from repro.datasets.partition import DirichletPartitioner
from repro.datasets.synthetic import make_classification_dataset
from repro.ml.distillation import (
    DistillationLoss,
    distill,
    ensemble_soft_labels,
    softmax_with_temperature,
)
from repro.ml.models import MLP
from repro.ml.optim import SGD


@pytest.fixture(scope="module")
def teacher_and_data():
    """A well-trained teacher MLP on a separable tabular problem."""
    dataset = make_classification_dataset(num_samples=300, num_features=12, num_classes=3, seed=9)
    teacher = MLP(input_dim=12, hidden_dims=(32,), num_classes=3, seed=1)
    teacher.fit(dataset.x, dataset.y, epochs=20, batch_size=32, optimizer=SGD(0.1))
    return teacher, dataset


class TestSoftmaxAndSoftLabels:
    def test_temperature_one_matches_plain_softmax(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        probs = softmax_with_temperature(logits, 1.0)
        assert probs.sum() == pytest.approx(1.0)
        assert probs[0, 2] > probs[0, 0]

    def test_higher_temperature_flattens_distribution(self):
        logits = np.array([[1.0, 5.0]])
        sharp = softmax_with_temperature(logits, 1.0)
        soft = softmax_with_temperature(logits, 10.0)
        assert soft[0].max() < sharp[0].max()

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            softmax_with_temperature(np.zeros((1, 2)), 0.0)

    def test_ensemble_averages_teachers(self, teacher_and_data):
        teacher, dataset = teacher_and_data
        other = MLP(input_dim=12, hidden_dims=(8,), num_classes=3, seed=2)
        labels = ensemble_soft_labels([teacher, other], dataset.x[:20], temperature=2.0)
        assert labels.shape == (20, 3)
        assert np.allclose(labels.sum(axis=1), 1.0)

    def test_ensemble_requires_matching_classes(self, teacher_and_data):
        teacher, dataset = teacher_and_data
        mismatched = MLP(input_dim=12, hidden_dims=(8,), num_classes=4, seed=3)
        with pytest.raises(ValueError):
            ensemble_soft_labels([teacher, mismatched], dataset.x[:5])

    def test_ensemble_requires_teachers(self, teacher_and_data):
        _, dataset = teacher_and_data
        with pytest.raises(ValueError):
            ensemble_soft_labels([], dataset.x[:5])


class TestDistillationLoss:
    def test_alpha_zero_equals_cross_entropy(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(8, 3))
        targets = rng.integers(0, 3, size=8)
        soft = softmax_with_temperature(rng.normal(size=(8, 3)), 2.0)
        from repro.ml.losses import CrossEntropyLoss

        kd_loss, kd_grad = DistillationLoss(alpha=0.0).forward(logits, targets, soft)
        ce_loss, ce_grad = CrossEntropyLoss().forward(logits, targets)
        assert kd_loss == pytest.approx(ce_loss)
        assert np.allclose(kd_grad, ce_grad)

    def test_matching_soft_targets_minimise_kl_term(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        matching_soft = softmax_with_temperature(logits, 2.0)
        different_soft = softmax_with_temperature(rng.normal(size=(6, 4)), 2.0)
        loss_fn = DistillationLoss(alpha=1.0, temperature=2.0)
        matched, _ = loss_fn.forward(logits, targets, matching_soft)
        mismatched, _ = loss_fn.forward(logits, targets, different_soft)
        assert matched < mismatched

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DistillationLoss().forward(np.zeros((2, 3)), np.zeros(2, dtype=int), np.zeros((2, 4)))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DistillationLoss(alpha=1.5)
        with pytest.raises(ValueError):
            DistillationLoss(temperature=0.0)


class TestDistill:
    def test_student_learns_from_teacher(self, teacher_and_data):
        teacher, dataset = teacher_and_data
        # The student has a different architecture (smaller hidden layer).
        student = MLP(input_dim=12, hidden_dims=(8,), num_classes=3, seed=4)
        before = student.evaluate(dataset.x, dataset.y)[1]
        distill(
            student,
            [teacher],
            dataset.x,
            dataset.y,
            epochs=8,
            batch_size=32,
            alpha=0.5,
            optimizer=SGD(0.1),
            rng=np.random.default_rng(0),
        )
        after = student.evaluate(dataset.x, dataset.y)[1]
        assert after > before
        assert after > 0.7

    def test_losses_decrease(self, teacher_and_data):
        teacher, dataset = teacher_and_data
        student = MLP(input_dim=12, hidden_dims=(16,), num_classes=3, seed=5)
        losses = distill(student, [teacher], dataset.x, dataset.y, epochs=5, batch_size=32,
                         optimizer=SGD(0.1), rng=np.random.default_rng(1))
        assert losses[-1] < losses[0]

    def test_input_validation(self, teacher_and_data):
        teacher, dataset = teacher_and_data
        student = MLP(input_dim=12, num_classes=3, seed=6)
        with pytest.raises(ValueError):
            distill(student, [teacher], dataset.x, dataset.y[:-1])
        with pytest.raises(ValueError):
            distill(student, [teacher], dataset.x, dataset.y, epochs=0)


class TestMultiModelCollaboration:
    def _build(self, collaborate_rounds=3, seed=0):
        dataset = make_classification_dataset(num_samples=360, num_features=12, num_classes=3, seed=seed)
        parts = DirichletPartitioner(3, alpha=0.4, seed=seed).partition(dataset)
        architectures = [(32,), (16, 16), (8,)]
        participants = [
            MultiModelParticipant(
                name=f"org{i + 1}",
                model=MLP(input_dim=12, hidden_dims=arch, num_classes=3, seed=seed + i),
                train_data=part,
                learning_rate=0.1,
                local_epochs=2,
            )
            for i, (arch, part) in enumerate(zip(architectures, parts))
        ]
        return MultiModelCollaboration(participants, eval_data=dataset, seed=seed)

    def test_round_records_all_participants(self):
        collaboration = self._build()
        record = collaboration.run_round()
        assert set(record.accuracies) == {"org1", "org2", "org3"}
        assert all(0.0 <= acc <= 1.0 for acc in record.accuracies.values())

    @staticmethod
    def _data_poor_setup(seed: int):
        """Two data-rich organisations plus one data-poor organisation.

        The data-poor silo is where distillation-based collaboration pays off:
        its own 12 samples are not enough, but its peers' models (different
        architectures) transfer their knowledge through soft labels.
        """
        from repro.datasets.dataloader import train_test_split

        dataset = make_classification_dataset(num_samples=400, num_features=12, num_classes=3, seed=seed)
        train, test = train_test_split(dataset, test_fraction=0.25, seed=seed)
        rich1 = train.subset(np.arange(0, 140))
        rich2 = train.subset(np.arange(140, 280))
        poor = train.subset(np.arange(280, 292))
        participants = [
            MultiModelParticipant("rich1", MLP(12, (32,), 3, seed=seed), rich1,
                                  learning_rate=0.1, local_epochs=2, distill_alpha=0.7),
            MultiModelParticipant("rich2", MLP(12, (16, 16), 3, seed=seed + 1), rich2,
                                  learning_rate=0.1, local_epochs=2, distill_alpha=0.7),
            MultiModelParticipant("poor", MLP(12, (8,), 3, seed=seed + 2), poor,
                                  learning_rate=0.1, local_epochs=2, distill_alpha=0.7),
        ]
        return MultiModelCollaboration(participants, eval_data=test, seed=seed)

    def test_data_poor_org_benefits_from_heterogeneous_collaboration(self):
        collaborative = self._data_poor_setup(seed=1)
        isolated = self._data_poor_setup(seed=1)
        collaborative.run(3, collaborate=True)
        isolated.run(3, collaborate=False)
        assert collaborative.final_accuracies()["poor"] > isolated.final_accuracies()["poor"]

    def test_heterogeneous_architectures_complete_collaboration(self):
        collaborative = self._build(seed=2)
        records = collaborative.run(2, collaborate=True)
        assert len(records) == 2
        assert all(len(r.accuracies) == 3 for r in records)

    def test_requires_two_participants(self):
        dataset = make_classification_dataset(num_samples=60, num_features=12, num_classes=3, seed=0)
        participant = MultiModelParticipant(
            name="solo", model=MLP(input_dim=12, num_classes=3, seed=0), train_data=dataset
        )
        with pytest.raises(ValueError):
            MultiModelCollaboration([participant], eval_data=dataset)

    def test_rejects_mismatched_class_counts(self):
        dataset = make_classification_dataset(num_samples=120, num_features=12, num_classes=3, seed=0)
        a = MultiModelParticipant("a", MLP(input_dim=12, num_classes=3, seed=0), dataset)
        b = MultiModelParticipant("b", MLP(input_dim=12, num_classes=4, seed=1), dataset)
        with pytest.raises(ValueError):
            MultiModelCollaboration([a, b], eval_data=dataset)

    def test_rejects_duplicate_names(self):
        dataset = make_classification_dataset(num_samples=120, num_features=12, num_classes=3, seed=0)
        a = MultiModelParticipant("dup", MLP(input_dim=12, num_classes=3, seed=0), dataset)
        b = MultiModelParticipant("dup", MLP(input_dim=12, num_classes=3, seed=1), dataset)
        with pytest.raises(ValueError):
            MultiModelCollaboration([a, b], eval_data=dataset)

    def test_final_accuracies_requires_a_round(self):
        collaboration = self._build()
        with pytest.raises(ValueError):
            collaboration.final_accuracies()
