"""Tests for the static analyzer (:mod:`repro.analysis`).

Each DET/UNIT rule gets a violating/clean fixture pair via ``lint_source``;
the cross-layer WIRE rules get mini-project fixtures under ``tmp_path``
driven through ``lint_paths``; the two suppression channels (inline ignores
and the baseline file) round-trip; stale baseline entries are detected and
pruned; the rule registry mirrors the policy registry's invariants; and —
the CI contract — the shipped ``src/repro`` tree lints clean against the
checked-in baseline under the full ``DET,UNIT,WIRE`` selection.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Rule,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    load_baseline,
    register_rule,
    save_baseline,
)
from repro.analysis.rules import expand_selectors, unregister_rule

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes_of(report):
    return sorted({finding.code for finding in report.findings})


# --------------------------------------------------------------- rule fixtures
class TestDET001WallClock:
    def test_flags_wall_clock_and_entropy_calls(self):
        source = (
            "import time\n"
            "import os\n"
            "import uuid\n"
            "def stamp():\n"
            "    return time.time(), os.urandom(8), uuid.uuid4()\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET001"]
        assert len(report.findings) == 3

    def test_clean_simulated_time_passes(self):
        source = (
            "def stamp(clock):\n"
            "    return clock.now()\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert report.findings == []

    def test_resolves_import_aliases(self):
        source = (
            "from time import perf_counter as pc\n"
            "def measure():\n"
            "    return pc()\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET001"]

    def test_perf_counter_allowed_only_in_perf_module(self):
        source = (
            "import time\n"
            "def measure():\n"
            "    return time.perf_counter()\n"
        )
        assert lint_source(source, path="src/repro/perf.py").findings == []
        assert codes_of(lint_source(source, path="src/repro/other.py")) == ["DET001"]

    def test_lookalike_method_on_local_object_is_not_flagged(self):
        source = (
            "def use(clock):\n"
            "    return clock.time()\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []


class TestDET002UnseededRNG:
    def test_flags_unseeded_constructors_and_ambient_calls(self):
        source = (
            "import random\n"
            "import numpy as np\n"
            "a = random.Random()\n"
            "b = np.random.default_rng()\n"
            "c = random.randint(0, 9)\n"
            "d = np.random.normal()\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET002"]
        assert len(report.findings) == 4

    def test_seeded_constructors_pass(self):
        source = (
            "import random\n"
            "import numpy as np\n"
            "a = random.Random(7)\n"
            "b = np.random.default_rng(7)\n"
            "c = np.random.default_rng(seed=7)\n"
            "d = b.normal()\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []

    def test_system_random_is_flagged_even_with_arguments(self):
        source = "import random\nr = random.SystemRandom()\n"
        assert codes_of(lint_source(source, path="src/repro/x.py")) == ["DET002"]


class TestDET003OrderDependence:
    def test_flags_set_iteration_and_aggregation(self):
        source = (
            "def f(names):\n"
            "    total = 0.0\n"
            "    for name in set(names):\n"
            "        total += len(name)\n"
            "    return total + sum({1.0, 2.0}) + max(frozenset(names))\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET003"]
        assert len(report.findings) == 3

    def test_flags_sum_over_dict_views(self):
        source = (
            "def f(table):\n"
            "    return sum(table.values()) + sum(v for v in table.values())\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET003"]
        assert len(report.findings) == 2

    def test_sorted_aggregation_passes(self):
        source = (
            "def f(names, table):\n"
            "    for name in sorted(set(names)):\n"
            "        pass\n"
            "    return sum(v for _, v in sorted(table.items()))\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []

    def test_plain_dict_iteration_is_not_flagged(self):
        # dict views are insertion-ordered; only float accumulation via
        # sum() makes the order an implicit invariant worth flagging.
        source = (
            "def f(table):\n"
            "    for key in table.keys():\n"
            "        pass\n"
            "    return max(table.values())\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []


class TestDET004ModeComparison:
    def test_flags_mode_ladders(self):
        source = (
            "def dispatch(config):\n"
            "    if config.mode == 'sync':\n"
            "        return 1\n"
            "    if mode in ('async', 'semi'):\n"
            "        return 2\n"
        )
        report = lint_source(source, path="src/repro/core/runner.py")
        assert codes_of(report) == ["DET004"]
        assert len(report.findings) == 2

    def test_registry_module_is_exempt(self):
        source = "def check(mode):\n    return mode == 'sync'\n"
        assert lint_source(source, path="src/repro/sched/registry.py").findings == []
        assert codes_of(lint_source(source, path="src/repro/core/cli.py")) == ["DET004"]

    def test_registry_lookup_passes(self):
        source = (
            "def dispatch(registry, config):\n"
            "    return registry.get_policy(config.mode).factory(config)\n"
        )
        assert lint_source(source, path="src/repro/core/runner.py").findings == []


class TestDET005MutableDefaults:
    def test_flags_mutable_defaults(self):
        source = (
            "def collect(into=[], table={}, seen=set()):\n"
            "    return into, table, seen\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET005"]
        assert len(report.findings) == 3

    def test_none_default_passes(self):
        source = (
            "def collect(into=None, count=0, name=''):\n"
            "    return into if into is not None else []\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []


class TestUNIT001UnitMixing:
    def test_flags_mixed_add_and_compare(self):
        source = (
            "def f(latency_s, payload_bytes, budget_mb):\n"
            "    total = latency_s + payload_bytes\n"
            "    return payload_bytes > budget_mb\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["UNIT001"]
        assert len(report.findings) == 2

    def test_flags_bytes_over_megabyte_bandwidth(self):
        # The historical transfer_time bug: dividing bytes by a MB/s
        # bandwidth yields a time that is off by a factor of a million.
        source = (
            "def transfer(num_bytes, bandwidth_mbytes_per_s):\n"
            "    return num_bytes / bandwidth_mbytes_per_s\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["UNIT001"]
        assert "bytes_over_bandwidth" in report.findings[0].message

    def test_same_dimension_arithmetic_passes(self):
        source = (
            "def f(latency_s, queue_s, upload_bytes, download_bytes):\n"
            "    wait_s = latency_s + queue_s\n"
            "    total_bytes = upload_bytes + download_bytes\n"
            "    return wait_s, total_bytes\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []

    def test_explicit_conversion_call_silences_the_rule(self):
        # A call has unknown dimension, so routing one side through a
        # units helper is exactly how a conversion opts out.
        source = (
            "from repro.simnet.units import bytes_over_bandwidth\n"
            "def f(latency_s, num_bytes, bw_mbytes_per_s):\n"
            "    return latency_s + bytes_over_bandwidth(num_bytes, bw_mbytes_per_s)\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []

    def test_unsuffixed_names_are_not_inferred(self):
        source = "def f(latency_s, fudge):\n    return latency_s + fudge\n"
        assert lint_source(source, path="src/repro/example.py").findings == []


class TestUNIT002ConversionLiterals:
    def test_flags_magic_constants_in_arithmetic(self):
        source = (
            "def f(bw, size):\n"
            "    a = bw * 1e6\n"
            "    b = size / 4e6\n"
            "    c = bw * 1_000_000\n"
            "    return a, b, c\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["UNIT002"]
        assert len(report.findings) == 3

    def test_bare_defaults_that_collide_numerically_pass(self):
        # A gas limit of 1_000_000 is a count, not a conversion; only
        # arithmetic *uses* of the constant are conversions.
        source = (
            "GAS_LIMIT = 1_000_000\n"
            "def f(limit=1_000_000, balance=1_000_000.0):\n"
            "    return limit, balance\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []

    def test_units_module_is_exempt(self):
        source = "MB = 1_000_000\ndef f(bw):\n    return bw * 1e6\n"
        assert lint_source(source, path="src/repro/simnet/units.py").findings == []
        assert codes_of(lint_source(source, path="src/repro/other.py")) == ["UNIT002"]


class TestUNIT003DeprecatedAlias:
    def test_flags_reads_and_keyword_passthrough(self):
        source = (
            "def f(profile):\n"
            "    bw = profile.bandwidth_mbps\n"
            "    return make_link(bandwidth_mbps=bw)\n"
        )
        report = lint_source(source, path="src/repro/example.py", codes=("UNIT003",))
        assert codes_of(report) == ["UNIT003"]
        assert len(report.findings) == 2

    def test_the_shim_definition_itself_passes(self):
        # Store contexts are the alias definitions, which must keep the
        # old spelling for backward compatibility.
        source = "link_bandwidth_mbps = None\n"
        assert lint_source(source, path="src/repro/example.py").findings == []

    def test_canonical_spelling_passes(self):
        source = "def f(profile):\n    return profile.bandwidth_mbytes_per_s\n"
        assert lint_source(source, path="src/repro/example.py").findings == []


class TestUNIT004SuffixAssignment:
    def test_flags_unsuffixed_and_cross_unit_sources(self):
        source = (
            "def f(raw, duration_s):\n"
            "    latency_s = raw\n"
            "    payload_bytes = duration_s\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["UNIT004"]
        assert len(report.findings) == 2
        assert "without a conversion" in report.findings[1].message

    def test_flags_keyword_arguments(self):
        source = (
            "def f(latency, bandwidth):\n"
            "    return NetworkLink(latency_s=latency, bandwidth_bytes_per_s=bandwidth)\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["UNIT004"]
        assert len(report.findings) == 2

    def test_matching_suffixes_and_conversions_pass(self):
        source = (
            "from repro.simnet.units import mbytes_per_s_to_bytes_per_s\n"
            "def f(wan_latency_s, bw_mbytes_per_s):\n"
            "    latency_s = wan_latency_s\n"
            "    bandwidth_bytes_per_s = mbytes_per_s_to_bytes_per_s(bw_mbytes_per_s)\n"
            "    return NetworkLink(latency_s=latency_s, bandwidth_bytes_per_s=bandwidth_bytes_per_s)\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []

    def test_unsuffixed_targets_are_not_inferred(self):
        source = "def f(duration_s):\n    total = duration_s\n    return total\n"
        assert lint_source(source, path="src/repro/example.py").findings == []


# ---------------------------------------------------------------- suppressions
class TestSuppressions:
    VIOLATING = "import time\nstamp = time.time()  # detlint: ignore[DET001]\n"

    def test_inline_ignore_suppresses_the_named_code(self):
        report = lint_source(self.VIOLATING, path="src/repro/x.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_inline_ignore_is_per_line_and_per_code(self):
        source = (
            "import time\n"
            "a = time.time()  # detlint: ignore[DET002]\n"  # wrong code
            "b = time.time()\n"  # no marker
        )
        report = lint_source(source, path="src/repro/x.py")
        assert len(report.findings) == 2
        assert report.suppressed == 0

    def test_ignore_accepts_multiple_codes(self):
        source = (
            "import time, random\n"
            "x = sum({random.random(), time.time()})  # detlint: ignore[DET001,DET002,DET003]\n"
        )
        report = lint_source(source, path="src/repro/x.py")
        assert report.findings == []
        assert report.suppressed == 3

    def test_skip_file_suppresses_the_whole_module(self):
        source = "# detlint: skip-file\nimport time\nstamp = time.time()\n"
        report = lint_source(source, path="src/repro/x.py")
        assert report.findings == []

    def test_code_filter_restricts_the_run(self):
        source = "import time\nstamp = time.time()\ndef f(x=[]):\n    return x\n"
        only_005 = lint_source(source, path="src/repro/x.py", codes=("DET005",))
        assert codes_of(only_005) == ["DET005"]
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source(source, path="src/repro/x.py", codes=("DET999",))


# -------------------------------------------------- cross-layer WIRE fixtures
CONFIG_MODULE = """\
from dataclasses import dataclass


@dataclass
class ExperimentConfig:
    rounds: int = 3
    block_period: float = 2.0
    orphan_knob: float = 1.0

    def __post_init__(self):
        if self.block_period <= 0:
            raise ValueError("block_period must be positive")
"""

CLI_MODULE = """\
import argparse

from config import ExperimentConfig


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--rounds", type=int, default=3)
    return parser


def build(argv=None):
    args = build_parser().parse_args(argv)
    return ExperimentConfig(rounds=args.rounds)
"""


def write_project(tmp_path, **modules):
    for name, source in modules.items():
        (tmp_path / f"{name}.py").write_text(source)
    return str(tmp_path)


class TestWIRE001ConfigCliWiring:
    def test_orphan_config_field_fires(self, tmp_path):
        # The acceptance-criterion fixture: ``orphan_knob`` has no CLI flag
        # and no __post_init__ validation, so the cross-layer pass flags it.
        root = write_project(tmp_path, config=CONFIG_MODULE, cli=CLI_MODULE)
        report = lint_paths([root], codes=("WIRE001",))
        assert codes_of(report) == ["WIRE001"]
        assert len(report.findings) == 1
        assert "orphan_knob" in report.findings[0].message
        assert report.findings[0].path.endswith("config.py")

    def test_validated_or_wired_fields_pass(self, tmp_path):
        # ``rounds`` is passed through the CLI construction and
        # ``block_period`` is validated in __post_init__ — neither fires.
        clean_config = CONFIG_MODULE.replace("    orphan_knob: float = 1.0\n", "")
        root = write_project(tmp_path, config=clean_config, cli=CLI_MODULE)
        assert lint_paths([root], codes=("WIRE001",)).findings == []

    def test_dead_wiring_fires_on_undefined_dest(self, tmp_path):
        dead_cli = CLI_MODULE.replace(
            "ExperimentConfig(rounds=args.rounds)",
            "ExperimentConfig(rounds=args.round_count)",
        )
        root = write_project(tmp_path, config=CONFIG_MODULE, cli=dead_cli)
        report = lint_paths([root], codes=("WIRE001",))
        messages = [finding.message for finding in report.findings]
        assert any("args.round_count" in message for message in messages)

    def test_config_without_cli_module_asserts_nothing(self, tmp_path):
        # Cross-layer by definition: a lone config fixture with no argparse
        # module in the scan must not condemn every field.
        root = write_project(tmp_path, config=CONFIG_MODULE)
        assert lint_paths([root], codes=("WIRE001",)).findings == []

    def test_inline_ignore_suppresses_project_findings(self, tmp_path):
        suppressed = CONFIG_MODULE.replace(
            "    orphan_knob: float = 1.0",
            "    orphan_knob: float = 1.0  # detlint: ignore[WIRE001]",
        )
        root = write_project(tmp_path, config=suppressed, cli=CLI_MODULE)
        report = lint_paths([root], codes=("WIRE001",))
        assert report.findings == []
        assert report.suppressed == 1


REPORTING_MODULE = """\
_CSV_COLUMNS = [
    "total_time_s",
    "upload_time",
    "download_time",
]

_CSV_EXEMPT_SUMMARY_KEYS = frozenset({"debug_counter"})
"""

FABRIC_MODULE = """\
TRANSFER_PHASES = ("upload", "download")


class Fabric:
    def phase_totals(self):
        return {}

    def summary(self):
        out = {}
        out["total_time"] = 1.0
        out["debug_counter"] = 2
        out["orphan_total"] = 3.0
        for phase, totals in self.phase_totals().items():
            out[f"{phase}_time"] = totals
        return out
"""


class TestWIRE002SummaryCsvSchema:
    def test_orphan_summary_key_fires(self, tmp_path):
        root = write_project(tmp_path, reporting=REPORTING_MODULE, fabric=FABRIC_MODULE)
        report = lint_paths([root], codes=("WIRE002",))
        assert codes_of(report) == ["WIRE002"]
        assert len(report.findings) == 1
        assert "orphan_total" in report.findings[0].message

    def test_suffix_mapping_exemptions_and_fstring_expansion_pass(self, tmp_path):
        # ``total_time`` matches via the _s mapping, ``debug_counter`` is
        # exempt, and the f-string loop expands over TRANSFER_PHASES to
        # upload_time/download_time which are columns.
        clean_fabric = FABRIC_MODULE.replace('        out["orphan_total"] = 3.0\n', "")
        root = write_project(tmp_path, reporting=REPORTING_MODULE, fabric=clean_fabric)
        assert lint_paths([root], codes=("WIRE002",)).findings == []

    def test_dropped_phase_column_fires_for_each_expanded_key(self, tmp_path):
        narrow = REPORTING_MODULE.replace('    "download_time",\n', "")
        clean_fabric = FABRIC_MODULE.replace('        out["orphan_total"] = 3.0\n', "")
        root = write_project(tmp_path, reporting=narrow, fabric=clean_fabric)
        report = lint_paths([root], codes=("WIRE002",))
        assert len(report.findings) == 1
        assert "download_time" in report.findings[0].message

    def test_without_a_csv_schema_asserts_nothing(self, tmp_path):
        root = write_project(tmp_path, fabric=FABRIC_MODULE)
        assert lint_paths([root], codes=("WIRE002",)).findings == []


class TestWIRE003RegistryBackedChoices:
    def test_literal_choices_fire(self, tmp_path):
        source = (
            "import argparse\n"
            "parser = argparse.ArgumentParser()\n"
            "parser.add_argument('--replication-mode', choices=['eager', 'lazy'])\n"
        )
        root = write_project(tmp_path, cli=source)
        report = lint_paths([root], codes=("WIRE003",))
        assert codes_of(report) == ["WIRE003"]
        assert "REPLICATION_MODES" in report.findings[0].message

    def test_missing_choices_fire(self, tmp_path):
        source = (
            "import argparse\n"
            "parser = argparse.ArgumentParser()\n"
            "parser.add_argument('--mode')\n"
        )
        root = write_project(tmp_path, cli=source)
        report = lint_paths([root], codes=("WIRE003",))
        assert codes_of(report) == ["WIRE003"]
        assert "no choices=" in report.findings[0].message

    def test_registry_derived_choices_pass(self, tmp_path):
        source = (
            "import argparse\n"
            "from repro.simnet.replication import REPLICATION_MODES\n"
            "from repro.sched.registry import registered_modes\n"
            "parser = argparse.ArgumentParser()\n"
            "parser.add_argument('--mode', choices=registered_modes())\n"
            "parser.add_argument('--replication-mode', choices=list(REPLICATION_MODES))\n"
            "parser.add_argument('--other', choices=['a', 'b'])\n"
        )
        root = write_project(tmp_path, cli=source)
        assert lint_paths([root], codes=("WIRE003",)).findings == []


# -------------------------------------------------------------------- baseline
class TestBaseline:
    def test_round_trip_and_filtering(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("import time\nstamp = time.time()\n")
        report = lint_paths([str(module)])
        assert len(report.findings) == 1

        baseline = Baseline()
        baseline.add(report.findings[0], note="fixture: intentionally nondeterministic")
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline, baseline_path)
        reloaded = load_baseline(baseline_path)
        assert len(reloaded) == 1

        filtered = lint_paths([str(module)], baseline=reloaded)
        assert filtered.findings == []
        assert filtered.baselined == 1

    def test_fingerprint_survives_line_churn(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("import time\nstamp = time.time()\n")
        baseline = Baseline()
        baseline.add(lint_paths([str(module)]).findings[0], note="pinned")
        # Push the offending line down: the (path, code, snippet) fingerprint
        # still matches even though the line number moved.
        module.write_text("import time\n\n\n# padding\nstamp = time.time()\n")
        filtered = lint_paths([str(module)], baseline=baseline)
        assert filtered.findings == []
        assert filtered.baselined == 1

    def test_note_is_mandatory(self):
        baseline = Baseline()
        with pytest.raises(ValueError, match="justification"):
            baseline.add(
                lint_source("import time\nt = time.time()\n", path="x.py").findings[0],
                note="   ",
            )

    def test_missing_file_loads_empty(self, tmp_path):
        assert len(load_baseline(tmp_path / "absent.json")) == 0

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


# ---------------------------------------------------------- baseline staleness
class TestBaselineStaleness:
    def make_baseline(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("import time\nstamp = time.time()\n")
        baseline = Baseline()
        baseline.add(lint_paths([str(module)]).findings[0], note="fixture justification")
        return module, baseline

    def test_fixed_violation_turns_the_entry_stale(self, tmp_path):
        module, baseline = self.make_baseline(tmp_path)
        assert baseline.stale_entries([str(module)]) == []
        module.write_text("stamp = None\n")  # the violation is gone
        stale = baseline.stale_entries([str(module)])
        assert len(stale) == 1
        assert stale[0]["code"] == "DET001"
        assert stale[0]["note"] == "fixture justification"

    def test_deleted_file_under_a_scanned_dir_is_stale(self, tmp_path):
        module, baseline = self.make_baseline(tmp_path)
        module.unlink()
        (tmp_path / "other.py").write_text("x = 1\n")
        assert len(baseline.stale_entries([str(tmp_path)])) == 1

    def test_entries_outside_the_scan_are_never_judged(self, tmp_path):
        _, baseline = self.make_baseline(tmp_path)
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        (elsewhere / "clean.py").write_text("x = 1\n")
        assert baseline.stale_entries([str(elsewhere)]) == []

    def test_staleness_is_independent_of_rule_selection(self, tmp_path):
        # A UNIT-only run must not condemn a DET baseline entry that is
        # still live: staleness is line-presence, not finding-presence.
        module, baseline = self.make_baseline(tmp_path)
        assert baseline.stale_entries([str(module)]) == []
        report = lint_paths([str(module)], codes=("UNIT",), baseline=baseline)
        assert report.findings == []

    def test_cli_exits_1_and_lists_stale_entries(self, tmp_path, capsys):
        from repro.cli import main

        module, baseline = self.make_baseline(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline, baseline_path)
        module.write_text("stamp = None\n")
        assert main(["lint", str(module), "--baseline", str(baseline_path)]) == 1
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        assert "DET001" in out

    def test_cli_update_baseline_prunes_stale_and_preserves_notes(self, tmp_path, capsys):
        from repro.cli import main

        # Two violations, baselined with distinct notes.
        keep = tmp_path / "keep.py"
        keep.write_text("import time\nstamp = time.time()\n")
        fix = tmp_path / "fix.py"
        fix.write_text("import os\ntoken = os.urandom(8)\n")
        baseline = Baseline()
        baseline.add(lint_paths([str(keep)]).findings[0], note="keep: justified forever")
        baseline.add(lint_paths([str(fix)]).findings[0], note="fix: temporary")
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline, baseline_path)

        fix.write_text("token = None\n")  # the second violation is fixed
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--baseline",
                    str(baseline_path),
                    "--update-baseline",
                    "NOTE",
                ]
            )
            == 0
        )
        assert "1 stale pruned" in capsys.readouterr().out
        updated = load_baseline(baseline_path)
        assert len(updated) == 1
        ((entry, note),) = updated.entries.items()
        assert entry[0].endswith("keep.py")
        assert note == "keep: justified forever"  # not clobbered by NOTE
        assert main(["lint", str(tmp_path), "--baseline", str(baseline_path)]) == 0


# --------------------------------------------------------------- rule registry
class TestRuleRegistry:
    def test_builtin_rules_are_registered_in_order(self):
        assert [rule.code for rule in all_rules()] == [
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "DET005",
            "UNIT001",
            "UNIT002",
            "UNIT003",
            "UNIT004",
            "WIRE001",
            "WIRE002",
            "WIRE003",
        ]

    def test_wire_rules_are_project_scoped(self):
        assert get_rule("WIRE001").scope == "project"
        assert get_rule("UNIT001").scope == "module"

    def test_every_rule_ships_an_explanation(self):
        for rule in all_rules():
            assert rule.explain.strip(), f"{rule.code} has no --explain text"

    def test_family_selectors_expand_to_registered_codes(self):
        assert expand_selectors(["UNIT"]) == [
            "UNIT001",
            "UNIT002",
            "UNIT003",
            "UNIT004",
        ]
        assert expand_selectors(["WIRE", "DET001"]) == [
            "WIRE001",
            "WIRE002",
            "WIRE003",
            "DET001",
        ]
        with pytest.raises(ValueError, match="unknown rule or family"):
            expand_selectors(["NOPE"])

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_rule(Rule(code="DET001", name="dup", summary="", check=lambda ctx: []))

    def test_unknown_rule_lists_registered_codes(self):
        with pytest.raises(ValueError, match="DET001") as excinfo:
            get_rule("DET999")
        assert "registered rules" in str(excinfo.value)

    def test_custom_rule_registers_and_unregisters(self):
        rule = Rule(code="DET900", name="test-only", summary="", check=lambda ctx: [])
        register_rule(rule)
        try:
            assert get_rule("DET900") is rule
        finally:
            unregister_rule("DET900")
        with pytest.raises(ValueError):
            get_rule("DET900")


# ------------------------------------------------------------ the CI contract
class TestShippedTreeLintsClean:
    def test_src_repro_is_clean_against_the_checked_in_baseline(self):
        baseline = load_baseline(REPO_ROOT / "detlint.baseline.json")
        report = lint_paths([str(REPO_ROOT / "src" / "repro")], baseline=baseline)
        assert report.parse_errors == []
        assert report.findings == [], "\n".join(f.render() for f in report.findings)

    def test_cli_lint_subcommand_exits_clean(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src/repro"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_lint_reports_violations_with_exit_1(self, tmp_path, capsys):
        from repro.cli import main

        module = tmp_path / "bad.py"
        module.write_text("import time\nstamp = time.time()\n")
        assert main(["lint", str(module), "--no-baseline"]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_cli_update_baseline_round_trips(self, tmp_path, capsys):
        from repro.cli import main

        module = tmp_path / "bad.py"
        module.write_text("import time\nstamp = time.time()\n")
        baseline_path = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(module),
                    "--baseline",
                    str(baseline_path),
                    "--update-baseline",
                    "fixture entry",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["lint", str(module), "--baseline", str(baseline_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_cli_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.code in out

    def test_cli_select_family_restricts_the_run(self, tmp_path, capsys):
        from repro.cli import main

        module = tmp_path / "mixed.py"
        module.write_text(
            "import time\n"
            "stamp = time.time()\n"
            "def f(bw):\n"
            "    return bw * 1e6\n"
        )
        assert main(["lint", str(module), "--select", "UNIT", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "UNIT002" in out
        assert "DET001" not in out

    def test_cli_select_unknown_family_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        module = tmp_path / "ok.py"
        module.write_text("x = 1\n")
        assert main(["lint", str(module), "--select", "NOPE"]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_cli_explain_known_code(self, capsys):
        from repro.cli import main

        assert main(["lint", "--explain", "WIRE001"]) == 0
        out = capsys.readouterr().out
        assert "WIRE001" in out
        assert "config-cli-wiring" in out
        assert "__post_init__" in out

    def test_cli_explain_unknown_code_exits_2(self, capsys):
        from repro.cli import main

        assert main(["lint", "--explain", "NOPE"]) == 2
        assert "unknown rule" in capsys.readouterr().out
