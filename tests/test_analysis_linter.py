"""Tests for the determinism linter (:mod:`repro.analysis`).

Each DET rule gets a violating/clean fixture pair, the two suppression
channels (inline ignores and the baseline file) round-trip, the rule
registry mirrors the policy registry's invariants, and — the CI contract —
the shipped ``src/repro`` tree lints clean against the checked-in baseline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Rule,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    load_baseline,
    register_rule,
    save_baseline,
)
from repro.analysis.rules import unregister_rule

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes_of(report):
    return sorted({finding.code for finding in report.findings})


# --------------------------------------------------------------- rule fixtures
class TestDET001WallClock:
    def test_flags_wall_clock_and_entropy_calls(self):
        source = (
            "import time\n"
            "import os\n"
            "import uuid\n"
            "def stamp():\n"
            "    return time.time(), os.urandom(8), uuid.uuid4()\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET001"]
        assert len(report.findings) == 3

    def test_clean_simulated_time_passes(self):
        source = (
            "def stamp(clock):\n"
            "    return clock.now()\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert report.findings == []

    def test_resolves_import_aliases(self):
        source = (
            "from time import perf_counter as pc\n"
            "def measure():\n"
            "    return pc()\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET001"]

    def test_perf_counter_allowed_only_in_perf_module(self):
        source = (
            "import time\n"
            "def measure():\n"
            "    return time.perf_counter()\n"
        )
        assert lint_source(source, path="src/repro/perf.py").findings == []
        assert codes_of(lint_source(source, path="src/repro/other.py")) == ["DET001"]

    def test_lookalike_method_on_local_object_is_not_flagged(self):
        source = (
            "def use(clock):\n"
            "    return clock.time()\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []


class TestDET002UnseededRNG:
    def test_flags_unseeded_constructors_and_ambient_calls(self):
        source = (
            "import random\n"
            "import numpy as np\n"
            "a = random.Random()\n"
            "b = np.random.default_rng()\n"
            "c = random.randint(0, 9)\n"
            "d = np.random.normal()\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET002"]
        assert len(report.findings) == 4

    def test_seeded_constructors_pass(self):
        source = (
            "import random\n"
            "import numpy as np\n"
            "a = random.Random(7)\n"
            "b = np.random.default_rng(7)\n"
            "c = np.random.default_rng(seed=7)\n"
            "d = b.normal()\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []

    def test_system_random_is_flagged_even_with_arguments(self):
        source = "import random\nr = random.SystemRandom()\n"
        assert codes_of(lint_source(source, path="src/repro/x.py")) == ["DET002"]


class TestDET003OrderDependence:
    def test_flags_set_iteration_and_aggregation(self):
        source = (
            "def f(names):\n"
            "    total = 0.0\n"
            "    for name in set(names):\n"
            "        total += len(name)\n"
            "    return total + sum({1.0, 2.0}) + max(frozenset(names))\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET003"]
        assert len(report.findings) == 3

    def test_flags_sum_over_dict_views(self):
        source = (
            "def f(table):\n"
            "    return sum(table.values()) + sum(v for v in table.values())\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET003"]
        assert len(report.findings) == 2

    def test_sorted_aggregation_passes(self):
        source = (
            "def f(names, table):\n"
            "    for name in sorted(set(names)):\n"
            "        pass\n"
            "    return sum(v for _, v in sorted(table.items()))\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []

    def test_plain_dict_iteration_is_not_flagged(self):
        # dict views are insertion-ordered; only float accumulation via
        # sum() makes the order an implicit invariant worth flagging.
        source = (
            "def f(table):\n"
            "    for key in table.keys():\n"
            "        pass\n"
            "    return max(table.values())\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []


class TestDET004ModeComparison:
    def test_flags_mode_ladders(self):
        source = (
            "def dispatch(config):\n"
            "    if config.mode == 'sync':\n"
            "        return 1\n"
            "    if mode in ('async', 'semi'):\n"
            "        return 2\n"
        )
        report = lint_source(source, path="src/repro/core/runner.py")
        assert codes_of(report) == ["DET004"]
        assert len(report.findings) == 2

    def test_registry_module_is_exempt(self):
        source = "def check(mode):\n    return mode == 'sync'\n"
        assert lint_source(source, path="src/repro/sched/registry.py").findings == []
        assert codes_of(lint_source(source, path="src/repro/core/cli.py")) == ["DET004"]

    def test_registry_lookup_passes(self):
        source = (
            "def dispatch(registry, config):\n"
            "    return registry.get_policy(config.mode).factory(config)\n"
        )
        assert lint_source(source, path="src/repro/core/runner.py").findings == []


class TestDET005MutableDefaults:
    def test_flags_mutable_defaults(self):
        source = (
            "def collect(into=[], table={}, seen=set()):\n"
            "    return into, table, seen\n"
        )
        report = lint_source(source, path="src/repro/example.py")
        assert codes_of(report) == ["DET005"]
        assert len(report.findings) == 3

    def test_none_default_passes(self):
        source = (
            "def collect(into=None, count=0, name=''):\n"
            "    return into if into is not None else []\n"
        )
        assert lint_source(source, path="src/repro/example.py").findings == []


# ---------------------------------------------------------------- suppressions
class TestSuppressions:
    VIOLATING = "import time\nstamp = time.time()  # detlint: ignore[DET001]\n"

    def test_inline_ignore_suppresses_the_named_code(self):
        report = lint_source(self.VIOLATING, path="src/repro/x.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_inline_ignore_is_per_line_and_per_code(self):
        source = (
            "import time\n"
            "a = time.time()  # detlint: ignore[DET002]\n"  # wrong code
            "b = time.time()\n"  # no marker
        )
        report = lint_source(source, path="src/repro/x.py")
        assert len(report.findings) == 2
        assert report.suppressed == 0

    def test_ignore_accepts_multiple_codes(self):
        source = (
            "import time, random\n"
            "x = sum({random.random(), time.time()})  # detlint: ignore[DET001,DET002,DET003]\n"
        )
        report = lint_source(source, path="src/repro/x.py")
        assert report.findings == []
        assert report.suppressed == 3

    def test_skip_file_suppresses_the_whole_module(self):
        source = "# detlint: skip-file\nimport time\nstamp = time.time()\n"
        report = lint_source(source, path="src/repro/x.py")
        assert report.findings == []

    def test_code_filter_restricts_the_run(self):
        source = "import time\nstamp = time.time()\ndef f(x=[]):\n    return x\n"
        only_005 = lint_source(source, path="src/repro/x.py", codes=("DET005",))
        assert codes_of(only_005) == ["DET005"]
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source(source, path="src/repro/x.py", codes=("DET999",))


# -------------------------------------------------------------------- baseline
class TestBaseline:
    def test_round_trip_and_filtering(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("import time\nstamp = time.time()\n")
        report = lint_paths([str(module)])
        assert len(report.findings) == 1

        baseline = Baseline()
        baseline.add(report.findings[0], note="fixture: intentionally nondeterministic")
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline, baseline_path)
        reloaded = load_baseline(baseline_path)
        assert len(reloaded) == 1

        filtered = lint_paths([str(module)], baseline=reloaded)
        assert filtered.findings == []
        assert filtered.baselined == 1

    def test_fingerprint_survives_line_churn(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("import time\nstamp = time.time()\n")
        baseline = Baseline()
        baseline.add(lint_paths([str(module)]).findings[0], note="pinned")
        # Push the offending line down: the (path, code, snippet) fingerprint
        # still matches even though the line number moved.
        module.write_text("import time\n\n\n# padding\nstamp = time.time()\n")
        filtered = lint_paths([str(module)], baseline=baseline)
        assert filtered.findings == []
        assert filtered.baselined == 1

    def test_note_is_mandatory(self):
        baseline = Baseline()
        with pytest.raises(ValueError, match="justification"):
            baseline.add(
                lint_source("import time\nt = time.time()\n", path="x.py").findings[0],
                note="   ",
            )

    def test_missing_file_loads_empty(self, tmp_path):
        assert len(load_baseline(tmp_path / "absent.json")) == 0

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


# --------------------------------------------------------------- rule registry
class TestRuleRegistry:
    def test_builtin_rules_are_registered_in_order(self):
        assert [rule.code for rule in all_rules()] == [
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "DET005",
        ]

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_rule(Rule(code="DET001", name="dup", summary="", check=lambda ctx: []))

    def test_unknown_rule_lists_registered_codes(self):
        with pytest.raises(ValueError, match="DET001") as excinfo:
            get_rule("DET999")
        assert "registered rules" in str(excinfo.value)

    def test_custom_rule_registers_and_unregisters(self):
        rule = Rule(code="DET900", name="test-only", summary="", check=lambda ctx: [])
        register_rule(rule)
        try:
            assert get_rule("DET900") is rule
        finally:
            unregister_rule("DET900")
        with pytest.raises(ValueError):
            get_rule("DET900")


# ------------------------------------------------------------ the CI contract
class TestShippedTreeLintsClean:
    def test_src_repro_is_clean_against_the_checked_in_baseline(self):
        baseline = load_baseline(REPO_ROOT / "detlint.baseline.json")
        report = lint_paths([str(REPO_ROOT / "src" / "repro")], baseline=baseline)
        assert report.parse_errors == []
        assert report.findings == [], "\n".join(f.render() for f in report.findings)

    def test_cli_lint_subcommand_exits_clean(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src/repro"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_lint_reports_violations_with_exit_1(self, tmp_path, capsys):
        from repro.cli import main

        module = tmp_path / "bad.py"
        module.write_text("import time\nstamp = time.time()\n")
        assert main(["lint", str(module), "--no-baseline"]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_cli_update_baseline_round_trips(self, tmp_path, capsys):
        from repro.cli import main

        module = tmp_path / "bad.py"
        module.write_text("import time\nstamp = time.time()\n")
        baseline_path = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(module),
                    "--baseline",
                    str(baseline_path),
                    "--update-baseline",
                    "fixture entry",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["lint", str(module), "--baseline", str(baseline_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_cli_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "DET004", "DET005"):
            assert code in out
