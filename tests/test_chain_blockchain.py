"""Tests for the contract runtime and the blockchain itself."""

from __future__ import annotations

import pytest

from repro.chain.account import Account
from repro.chain.blockchain import Blockchain, BlockchainError
from repro.chain.contract import (
    Contract,
    ContractError,
    ContractRuntime,
    GasExhaustedError,
    contract_method,
    view_method,
)
from repro.chain.events import EventFilter
from repro.chain.transaction import Transaction


class Counter(Contract):
    """A minimal test contract with state, events, require and a view."""

    name = "counter"

    def __init__(self):
        super().__init__()
        self.count = 0
        self.owner_calls = {}

    @contract_method
    def increment(self, by: int = 1):
        self.require(by > 0, "by must be positive")
        self.count += by
        self.owner_calls[self.ctx.sender] = self.owner_calls.get(self.ctx.sender, 0) + 1
        self.emit("Incremented", count=self.count, by=by)
        return self.count

    @contract_method
    def burn_gas(self):
        self.ctx.charge(10_000_000)
        return True

    @view_method
    def get(self):
        return self.count

    def internal_helper(self):
        return "not callable externally"


class TestContractRuntime:
    def test_deploy_and_call_view(self):
        runtime = ContractRuntime()
        runtime.deploy(Counter())
        result, ctx = runtime.call("counter", "get")
        assert result == 0
        assert ctx.gas_used >= Counter.base_gas_per_call

    def test_duplicate_deploy_rejected(self):
        runtime = ContractRuntime()
        runtime.deploy(Counter())
        with pytest.raises(ContractError):
            runtime.deploy(Counter())

    def test_unknown_contract(self):
        with pytest.raises(ContractError):
            ContractRuntime().get("nope")

    def test_unknown_method(self):
        runtime = ContractRuntime()
        runtime.deploy(Counter())
        with pytest.raises(ContractError):
            runtime.call("counter", "internal_helper")

    def test_call_mutates_state_and_emits(self):
        runtime = ContractRuntime()
        contract = runtime.deploy(Counter())
        result, ctx = runtime.call("counter", "increment", {"by": 3}, sender="0xa")
        assert result == 3 and contract.count == 3
        assert len(ctx.events) == 1
        assert ctx.events[0].payload["by"] == 3

    def test_require_reverts(self):
        runtime = ContractRuntime()
        runtime.deploy(Counter())
        with pytest.raises(ContractError):
            runtime.call("counter", "increment", {"by": 0})

    def test_gas_limit_enforced(self):
        runtime = ContractRuntime()
        runtime.deploy(Counter())
        with pytest.raises(GasExhaustedError):
            runtime.call("counter", "burn_gas", gas_limit=50_000)

    def test_is_view_classification(self):
        assert Counter.is_view("get") is True
        assert Counter.is_view("increment") is False
        with pytest.raises(ContractError):
            Counter.is_view("missing")

    def test_ctx_unavailable_outside_call(self):
        contract = Counter()
        with pytest.raises(ContractError):
            _ = contract.ctx


class TestBlockchain:
    def test_genesis_block_exists(self, blockchain):
        assert blockchain.height == 0
        assert len(blockchain.blocks) == 1

    def test_requires_validators(self):
        with pytest.raises(BlockchainError):
            Blockchain([])

    def test_send_and_mine_executes_contract(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        blockchain.send(validator_accounts[0], "counter", "increment", {"by": 5})
        block = blockchain.mine_block()
        assert block.number == 1
        assert blockchain.call("counter", "get") == 5

    def test_receipt_records_success_and_events(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        tx_hash = blockchain.send(validator_accounts[0], "counter", "increment", {"by": 2})
        blockchain.mine_block()
        receipt = blockchain.receipt(tx_hash)
        assert receipt is not None and receipt.success
        assert receipt.return_value == 2
        assert receipt.events[0].name == "Incremented"

    def test_failed_transaction_recorded_not_fatal(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        tx_hash = blockchain.send(validator_accounts[0], "counter", "increment", {"by": -1})
        blockchain.mine_block()
        receipt = blockchain.receipt(tx_hash)
        assert receipt is not None and not receipt.success
        assert "positive" in receipt.error
        assert blockchain.metrics.transactions_failed == 1

    def test_unknown_sender_rejected(self, blockchain):
        stranger = Account.create(seed=777)
        tx = Transaction.create(stranger, "counter", "increment", {})
        with pytest.raises(BlockchainError):
            blockchain.submit_transaction(tx)

    def test_bad_signature_rejected(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        tx = Transaction.create(validator_accounts[0], "counter", "increment", {})
        tx.signature = "00" * 32
        with pytest.raises(BlockchainError):
            blockchain.submit_transaction(tx)

    def test_nonce_order_enforced(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        account = validator_accounts[0]
        tx1 = Transaction.create(account, "counter", "increment", {})
        tx2 = Transaction.create(account, "counter", "increment", {})
        blockchain.submit_transaction(tx2 if False else tx1)
        # Submitting a transaction with a skipped nonce must fail.
        tx_future = Transaction.create(account, "counter", "increment", {})
        with pytest.raises(BlockchainError):
            blockchain.submit_transaction(tx_future)

    def test_replay_rejected(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        account = validator_accounts[0]
        tx = Transaction.create(account, "counter", "increment", {})
        blockchain.submit_transaction(tx)
        with pytest.raises(BlockchainError):
            blockchain.submit_transaction(tx)

    def test_events_stamped_with_block(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        blockchain.send(validator_accounts[0], "counter", "increment", {"by": 1})
        blockchain.mine_block()
        events = blockchain.events(EventFilter(name="Incremented"))
        assert len(events) == 1
        assert events[0].block_number == 1
        assert events[0].tx_hash

    def test_subscription_fires_on_mine(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        received = []
        blockchain.subscribe(received.append, EventFilter(name="Incremented"))
        blockchain.send(validator_accounts[0], "counter", "increment", {"by": 1})
        blockchain.mine_block()
        assert len(received) == 1

    def test_view_call_does_not_mine(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        assert blockchain.call("counter", "get") == 0
        assert blockchain.height == 0

    def test_call_rejects_mutating_method(self, blockchain):
        blockchain.deploy_contract(Counter())
        with pytest.raises(BlockchainError):
            blockchain.call("counter", "increment", {"by": 1})

    def test_mine_until_empty(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        for i in range(3):
            blockchain.send(validator_accounts[i % 3], "counter", "increment", {"by": 1})
        blocks = blockchain.mine_until_empty()
        assert blockchain.pending_count == 0
        assert len(blocks) >= 1
        assert blockchain.call("counter", "get") == 3

    def test_sealer_rotation_across_blocks(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        sealers = []
        for i in range(4):
            blockchain.send(validator_accounts[i % 3], "counter", "increment", {"by": 1})
            sealers.append(blockchain.mine_block().header.sealer)
        assert len(set(sealers)) >= 2  # not a single validator sealing everything

    def test_chain_verifies(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        for i in range(5):
            blockchain.send(validator_accounts[i % 3], "counter", "increment", {"by": 1})
            blockchain.mine_block()
        assert blockchain.verify_chain()

    def test_tampering_detected(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        blockchain.send(validator_accounts[0], "counter", "increment", {"by": 1})
        blockchain.mine_block()
        blockchain.send(validator_accounts[1], "counter", "increment", {"by": 1})
        blockchain.mine_block()
        # Tamper with an earlier block's transactions.
        blockchain.blocks[1].transactions = []
        assert not blockchain.verify_chain()

    def test_metrics_accumulate(self, blockchain, validator_accounts):
        blockchain.deploy_contract(Counter())
        blockchain.send(validator_accounts[0], "counter", "increment", {"by": 1})
        blockchain.mine_block()
        metrics = blockchain.metrics.as_dict()
        assert metrics["blocks_mined"] == 1
        assert metrics["transactions_processed"] == 1
        assert metrics["total_gas_used"] > 0
        assert metrics["total_bytes"] > 0

    def test_register_account_allows_non_validator_sender(self, blockchain):
        blockchain.deploy_contract(Counter())
        outsider = Account.create(seed=55)
        blockchain.register_account(outsider)
        blockchain.send(outsider, "counter", "increment", {"by": 4})
        blockchain.mine_block()
        assert blockchain.call("counter", "get") == 4
