"""Tests for the round-policy registry and the hierarchical/gossip modes.

The registry is the single source of truth for orchestration modes: runner
dispatch, ``ExperimentConfig`` validation, CLI ``--mode`` choices and the
contract's behaviour profile all derive from it.  These tests pin that
derivation, the registry's own invariants (duplicate registration is a hard
error), the end-to-end round-trip of every built-in mode, and the degenerate
baselines of the two new modes (one-group hierarchical, zero-fanout gossip).
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser
from repro.core.config import (
    ClusterConfig,
    ExperimentConfig,
    cifar10_workload,
    edge_cluster_configs,
)
from repro.core.contract import UnifyFLContract
from repro.core.runner import ExperimentRunner, run_experiment
from repro.sched.registry import (
    ContractProfile,
    PolicySpec,
    get_policy,
    register_policy,
    registered_modes,
    unregister_policy,
)


def tiny_config(mode: str, rounds: int = 2, seed: int = 3, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"registry-{mode}",
        workload=cifar10_workload(rounds=rounds, samples_per_class=8, image_size=8),
        clusters=edge_cluster_configs(num_clients=2),
        mode=mode,
        rounds=rounds,
        seed=seed,
        monitor_resources=False,
        **kwargs,
    )


class TestRegistry:
    def test_builtin_modes_are_registered_in_order(self):
        assert registered_modes() == ["sync", "async", "semi", "hierarchical", "gossip"]

    def test_duplicate_registration_raises(self):
        spec = PolicySpec(name="sync", factory=lambda build: None)
        with pytest.raises(ValueError, match="already registered"):
            register_policy(spec)

    def test_unknown_mode_lists_registered_names(self):
        with pytest.raises(ValueError, match="registered modes") as excinfo:
            get_policy("eventual")
        for mode in registered_modes():
            assert mode in str(excinfo.value)

    def test_custom_policy_registers_and_unregisters(self):
        spec = PolicySpec(
            name="every-other",
            factory=lambda build: None,
            description="test-only",
        )
        register_policy(spec)
        try:
            assert "every-other" in registered_modes()
            assert get_policy("every-other") is spec
        finally:
            unregister_policy("every-other")
        assert "every-other" not in registered_modes()

    def test_contract_profiles_match_modes(self):
        assert get_policy("sync").contract == ContractProfile(phase_gated=True)
        assert get_policy("async").contract.assigns_scorers_on_submit
        assert get_policy("semi").contract.buffered
        assert get_policy("hierarchical").contract.assigns_scorers_on_submit
        gossip = get_policy("gossip").contract
        assert not gossip.assigns_scorers_on_submit
        assert not gossip.phase_gated and not gossip.buffered


class TestConfigValidation:
    def test_unknown_mode_fails_at_construction_with_names(self):
        with pytest.raises(ValueError, match="registered modes") as excinfo:
            tiny_config("eventual")
        assert "hierarchical" in str(excinfo.value)
        assert "gossip" in str(excinfo.value)

    def test_similarity_scoring_rejected_outside_sync(self):
        for mode in ("async", "semi", "hierarchical", "gossip"):
            with pytest.raises(ValueError, match="only .*supported in sync"):
                tiny_config(mode, scoring_algorithm="multikrum")
        # Sync accepts it.
        assert tiny_config("sync", scoring_algorithm="multikrum").mode == "sync"

    def test_new_knobs_are_validated(self):
        with pytest.raises(ValueError, match="local_rounds_per_global"):
            tiny_config("hierarchical", local_rounds_per_global=0)
        with pytest.raises(ValueError, match="round_budget"):
            tiny_config("hierarchical", round_budget=0)
        with pytest.raises(ValueError, match="gossip_fanout"):
            tiny_config("gossip", gossip_fanout=-1)

    def test_cli_mode_choices_come_from_registry(self):
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions if isinstance(action.choices, dict)
        )
        mode_action = next(
            action
            for action in subparsers.choices["run"]._actions
            if "--mode" in action.option_strings
        )
        assert list(mode_action.choices) == registered_modes()


class TestContractProfileBehaviour:
    def test_unknown_contract_mode_raises(self):
        with pytest.raises(ValueError, match="registered modes"):
            UnifyFLContract(mode="eventual")

    def test_gossip_contract_assigns_no_scorers(self):
        from repro.chain.account import Account
        from repro.chain.blockchain import Blockchain

        accounts = [Account.create(label=f"a{i}", seed=i) for i in range(3)]
        chain = Blockchain(accounts, block_period=1.0)
        chain.deploy_contract(UnifyFLContract(mode="gossip"))
        for account in accounts:
            chain.send(account, "unifyfl", "registerAggregator")
        chain.mine_until_empty()
        chain.send(accounts[0], "unifyfl", "submitModel", {"cid": "QmX", "timestamp": 1.0})
        chain.mine_until_empty()
        record = chain.call("unifyfl", "getSubmission", {"cid": "QmX"})
        assert record["assigned_scorers"] == []
        # The submission itself is recorded and auditable.
        assert chain.call("unifyfl", "roundSubmissionCount", {"round_number": 1}) == 1


class TestModeRoundTrips:
    @pytest.mark.parametrize("mode", ["sync", "async", "semi", "hierarchical", "gossip"])
    def test_every_builtin_mode_round_trips_to_result(self, mode):
        result = run_experiment(tiny_config(mode))
        assert result.mode == mode
        for aggregator in result.aggregators:
            assert len(aggregator.history) == 2

    def test_runner_and_cli_have_no_mode_ladder(self):
        # The DET004 linter rule is the reusable form of what used to be a
        # hand-rolled AST walk here: flagging literal mode comparisons
        # outside the policy registry.  Invoking the rule keeps this test
        # and ``repro lint`` incapable of drifting apart.
        import inspect

        from repro.analysis import lint_paths
        from repro.core import runner as runner_module
        from repro import cli as cli_module

        files = [inspect.getsourcefile(module) for module in (runner_module, cli_module)]
        report = lint_paths(files, codes=("DET004",))
        assert not report.findings, "\n".join(
            finding.render() for finding in report.findings
        )


class TestDegenerateBaselines:
    def test_hierarchical_single_group_has_one_leader_submission_per_round(self):
        config = tiny_config("hierarchical", rounds=3, local_rounds_per_global=1)
        runner = ExperimentRunner(config)
        result = runner.run()
        extras = result.orchestration_extras
        assert extras["num_sites"] == 1
        assert list(extras["groups"]) == ["0"]
        # One leader submission per global round, rotating over the group.
        assert len(extras["leaders"]) == 3
        assert len({leader for _, _, leader in extras["leaders"]}) == 3
        # Exactly one on-chain submission per global round (the leader's),
        # and the rotation means each cluster submitted exactly once.
        assert runner.chain is not None
        submissions = runner.chain.call("unifyfl", "getLatestModelsWithScores")
        assert len(submissions) == 3
        assert len({record["submitter"] for record in submissions}) == 3

    def test_gossip_zero_fanout_is_isolated_training(self):
        result = run_experiment(tiny_config("gossip", rounds=3, gossip_fanout=0))
        extras = result.orchestration_extras
        assert extras["exchange_count"] == 0
        assert extras["exchange_time"] == 0.0
        for aggregator in result.aggregators:
            for record in aggregator.history:
                assert record.models_pulled == 0
                assert record.timing.exchange_time == 0.0

    def test_gossip_is_deterministic_for_a_seed(self):
        first = run_experiment(tiny_config("gossip", rounds=3, seed=11))
        second = run_experiment(tiny_config("gossip", rounds=3, seed=11))
        assert [a.global_accuracy for a in first.aggregators] == [
            a.global_accuracy for a in second.aggregators
        ]
        assert [a.total_time for a in first.aggregators] == [
            a.total_time for a in second.aggregators
        ]
        assert (
            first.orchestration_extras["exchanges"]
            == second.orchestration_extras["exchanges"]
        )
