"""Tests for the simulation sanitizer (:mod:`repro.analysis.sanitizer`).

The sanitizer must trip on artificially corrupted state at every hooked
layer (kernel, link scheduler, fabric totals), stay silent across default
runs of every mode, and — the core contract — leave a sanitized run
bit-identical to an unsanitized one.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.analysis import SanitizerViolation, SimulationSanitizer
from repro.core.config import ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.runner import ExperimentRunner
from repro.sched.kernel import SimulationKernel
from repro.simnet.network import LinkScheduler, ScheduledTransfer

ALL_MODES = ("sync", "async", "semi", "hierarchical", "gossip")


def tiny_config(mode: str = "async", **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"sanitizer-{mode}",
        workload=cifar10_workload(rounds=2, samples_per_class=8, image_size=8),
        clusters=edge_cluster_configs(num_clients=2),
        mode=mode,
        rounds=2,
        seed=5,
        monitor_resources=False,
        storage_replicas=2,
        **kwargs,
    )


# -------------------------------------------------------------- kernel hook
class TestKernelHook:
    def test_trips_on_an_event_in_the_simulated_past(self):
        kernel = SimulationKernel()
        kernel.sanitizer = SimulationSanitizer()
        kernel.clock.advance_to(10.0)
        # Bypass schedule_at (which clamps to now): the raw queue accepts the
        # corrupted timestamp, and without the sanitizer the clock would
        # silently swallow it (advance_to ignores past timestamps).
        kernel.queue.push(5.0, lambda: None)
        with pytest.raises(SanitizerViolation, match="simulated past"):
            kernel.step()

    def test_silent_on_an_ordered_event_stream(self):
        kernel = SimulationKernel()
        kernel.sanitizer = SimulationSanitizer()
        fired = []
        kernel.schedule_at(1.0, lambda: fired.append(1))
        kernel.schedule_at(2.0, lambda: fired.append(2))
        kernel.run()
        assert fired == [1, 2]
        assert kernel.sanitizer.checks["event"] == 2

    def test_detached_kernel_does_not_check(self):
        kernel = SimulationKernel()
        kernel.clock.advance_to(10.0)
        kernel.queue.push(5.0, lambda: None)
        assert kernel.step()  # the pre-sanitizer behaviour: silently tolerated


# ----------------------------------------------------------- scheduler hook
class TestSchedulerHook:
    def build(self) -> LinkScheduler:
        scheduler = LinkScheduler()
        scheduler.sanitizer = SimulationSanitizer()
        return scheduler

    def test_silent_on_planned_transfers(self):
        scheduler = self.build()
        for at in (0.0, 1.0, 2.0):
            scheduler.transfer("a", "b", 1_000_000, at)
        assert scheduler.sanitizer.checks["reservation"] == 3

    def test_trips_on_a_transfer_starting_before_its_request(self):
        scheduler = self.build()
        corrupted = ScheduledTransfer(
            source="a", destination="b", num_bytes=1,
            requested_at=5.0, started_at=4.0, finished_at=6.0,
        )
        with pytest.raises(SanitizerViolation, match="before it was requested"):
            scheduler._commit(corrupted)

    def test_trips_on_negative_wire_time(self):
        scheduler = self.build()
        corrupted = ScheduledTransfer(
            source="a", destination="b", num_bytes=1,
            requested_at=0.0, started_at=5.0, finished_at=4.0,
        )
        with pytest.raises(SanitizerViolation, match="negative wire time"):
            scheduler._commit(corrupted)

    def test_trips_on_a_capacity_breach(self):
        scheduler = self.build()
        first = ScheduledTransfer(
            source="a", destination="b", num_bytes=1,
            requested_at=0.0, started_at=0.0, finished_at=10.0,
        )
        scheduler._commit(first)  # alone: fine
        overlapping = ScheduledTransfer(
            source="a", destination="c", num_bytes=1,
            requested_at=0.0, started_at=5.0, finished_at=15.0,
        )
        # Endpoint 'a' is serial (capacity 1); a second overlapping
        # reservation could never come out of the planner.
        with pytest.raises(SanitizerViolation, match="above its declared"):
            scheduler._commit(overlapping)

    def test_respects_raised_capacity(self):
        scheduler = self.build()
        scheduler.set_capacity("a", 2)
        for destination in ("b", "c"):
            scheduler._commit(
                ScheduledTransfer(
                    source="a", destination=destination, num_bytes=1,
                    requested_at=0.0, started_at=0.0, finished_at=10.0,
                )
            )
        third = ScheduledTransfer(
            source="a", destination="d", num_bytes=1,
            requested_at=0.0, started_at=5.0, finished_at=15.0,
        )
        with pytest.raises(SanitizerViolation, match="above its declared"):
            scheduler._commit(third)

    def test_trips_on_a_start_inside_a_fault_window(self):
        scheduler = self.build()
        scheduler.set_outages("b", [(10.0, 20.0)])
        corrupted = ScheduledTransfer(
            source="a", destination="b", num_bytes=1,
            requested_at=15.0, started_at=15.0, finished_at=16.0,
        )
        with pytest.raises(SanitizerViolation, match="fault window"):
            scheduler._commit(corrupted)

    def test_planned_transfers_avoid_fault_windows(self):
        scheduler = self.build()
        scheduler.set_outages("b", [(0.0, 50.0)])
        scheduled = scheduler.transfer("a", "b", 1_000_000, 10.0)
        assert scheduled.started_at >= 50.0
        assert scheduler.sanitizer.checks["reservation"] == 1


# -------------------------------------------------------------- fabric hook
class TestFabricHook:
    def fake_fabric(self) -> SimpleNamespace:
        scheduler = SimpleNamespace(total_wire_time=1.0, total_queued_time=0.5, log=[1, 2])
        return SimpleNamespace(
            network=SimpleNamespace(scheduler=scheduler, wan_bytes=100),
            chain=SimpleNamespace(log=[1]),
        )

    def test_silent_while_totals_grow(self):
        sanitizer = SimulationSanitizer()
        fabric = self.fake_fabric()
        sanitizer.observe_fabric(fabric)
        fabric.network.scheduler.total_wire_time = 2.0
        fabric.network.scheduler.log.append(3)
        fabric.network.wan_bytes = 250
        sanitizer.observe_fabric(fabric)
        assert sanitizer.checks["fabric"] == 2

    def test_trips_when_a_total_moves_backwards(self):
        sanitizer = SimulationSanitizer()
        fabric = self.fake_fabric()
        sanitizer.observe_fabric(fabric)
        fabric.network.wan_bytes = 50
        with pytest.raises(SanitizerViolation, match="wan_bytes moved backwards"):
            sanitizer.observe_fabric(fabric)

    def test_trips_when_the_log_shrinks(self):
        sanitizer = SimulationSanitizer()
        fabric = self.fake_fabric()
        sanitizer.observe_fabric(fabric)
        fabric.network.scheduler.log.pop()
        with pytest.raises(SanitizerViolation, match="log.*moved backwards"):
            sanitizer.observe_fabric(fabric)


# --------------------------------------------------------------- end to end
class TestSanitizedRuns:
    def test_default_config_attaches_no_sanitizer(self):
        runner = ExperimentRunner(tiny_config())
        runner.build()
        assert runner.sanitizer is None
        assert runner.comm is not None and runner.comm.sanitizer is None

    def test_sanitized_run_is_silent_and_actually_checks(self):
        runner = ExperimentRunner(tiny_config(sanitize=True))
        runner.run()  # a violation would raise out of here
        assert runner.sanitizer is not None
        report = runner.sanitizer.report()
        assert report["event"] > 0
        assert report["reservation"] > 0
        assert report["fabric"] > 0

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_sanitized_run_is_bit_identical(self, mode):
        plain = ExperimentRunner(tiny_config(mode)).run()
        sanitized = ExperimentRunner(tiny_config(mode, sanitize=True)).run()
        assert plain.comm_metrics == sanitized.comm_metrics
        assert plain.orchestration_extras == sanitized.orchestration_extras
        for a, b in zip(plain.aggregators, sanitized.aggregators):
            assert a.total_time == b.total_time
            assert a.global_accuracy == b.global_accuracy
            assert a.global_loss == b.global_loss
            assert [r.sim_time for r in a.history] == [r.sim_time for r in b.history]

    def test_sanitizer_works_under_fault_injection(self):
        # Outage windows and failover re-aims exercise the fault-window and
        # capacity checks against the real planner: still no false positives.
        config = tiny_config(
            sanitize=True,
            replication_mode="lazy",
            churn_rate=0.1,
            replica_outages=1,
            outage_duration_s=80.0,
        )
        runner = ExperimentRunner(config)
        runner.run()
        assert runner.sanitizer is not None
        assert runner.sanitizer.checks["reservation"] > 0
