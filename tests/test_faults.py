"""Tests for the fault-injection scenario engine (PR 7).

Covers, bottom-up:

* :mod:`repro.simnet.faults` — :class:`FaultPlan` (seeded churn draws,
  outage/partition windows, drop accounting, ``from_config`` staggering),
  :class:`ResiliencePolicy` and the :class:`CircuitBreaker` state machine;
* :class:`~repro.simnet.network.LinkScheduler` outage/partition windows —
  faulted paths wait for scheduled recovery, unrelated paths don't;
* :class:`~repro.sched.actors.NetworkActor` resilience — retry with
  exponential backoff + deterministic jitter, breaker fast-fail, failover to
  the next-best reachable replica, graceful degradation;
* end-to-end: seeded-determinism fuzz (same seed → identical event logs,
  summaries and CSV rows; different seeds → different plans), churn on the
  constant-cost path, and the acceptance scenario — failover measurably
  beats ``retry_max=0`` on a staggered two-replica outage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.reporting import save_results_csv
from repro.core.results import format_comm_table
from repro.core.runner import ExperimentRunner
from repro.sched.actors import NetworkActor
from repro.simnet.faults import (
    CircuitBreaker,
    FaultPlan,
    ReplicaOutage,
    ResiliencePolicy,
    WanPartition,
    merge_windows,
)
from repro.simnet.network import LinkScheduler, NetworkLink, NetworkModel, Topology


def make_network(bandwidth_bytes_per_s: float = 1e6, latency_s: float = 0.0) -> NetworkModel:
    return NetworkModel(
        default_link=NetworkLink(latency_s=latency_s, bandwidth_bytes_per_s=bandwidth_bytes_per_s)
    )


def two_site_topology() -> Topology:
    topo = Topology(default_wan_link=NetworkLink(latency_s=0.05, bandwidth_bytes_per_s=50e6))
    topo.add_replica("storage-0", capacity=1).add_replica("storage-1", capacity=1)
    topo.add_cluster("agg1", "storage-0", NetworkLink(0.001, 100e6))
    topo.add_cluster("agg2", "storage-1", NetworkLink(0.001, 100e6))
    return topo


def fault_config(mode: str = "semi", **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"faults-{mode}",
        workload=cifar10_workload(rounds=2, samples_per_class=10, image_size=8, learning_rate=0.05),
        clusters=edge_cluster_configs(num_clients=2),
        mode=mode,
        rounds=3,
        seed=3,
        monitor_resources=False,
        **kwargs,
    )


# ------------------------------------------------------------------------ window helpers
class TestMergeWindows:
    def test_sorts_and_coalesces_overlaps(self):
        assert merge_windows([(5.0, 9.0), (0.0, 2.0), (1.0, 3.0), (9.0, 11.0)]) == [
            (0.0, 3.0),
            (5.0, 11.0),
        ]

    def test_rejects_invalid_windows(self):
        with pytest.raises(ValueError):
            merge_windows([(2.0, 1.0)])
        with pytest.raises(ValueError):
            merge_windows([(-1.0, 1.0)])


# ----------------------------------------------------------------------------- fault plan
class TestFaultPlan:
    def test_zero_plan(self):
        plan = FaultPlan(seed=4)
        assert plan.is_zero
        assert not plan.cluster_offline("agg1", 1)
        assert plan.dropped_clients == 0
        assert plan.outage_seconds == 0.0 and plan.partition_seconds == 0.0

    def test_churn_draws_are_deterministic_and_idempotent(self):
        plan = FaultPlan(seed=5, churn_rate=0.5)
        first = [plan.cluster_offline("agg1", r) for r in range(1, 11)]
        # Redrawing changes nothing and never double-counts drops.
        second = [plan.cluster_offline("agg1", r) for r in range(1, 11)]
        assert first == second
        assert plan.dropped_clients == sum(first)
        # The same draws replay on a fresh plan with the same seed, and are
        # call-order independent.
        replay = FaultPlan(seed=5, churn_rate=0.5)
        shuffled = {r: replay.cluster_offline("agg1", r) for r in reversed(range(1, 11))}
        assert [shuffled[r] for r in range(1, 11)] == first

    def test_churn_differs_across_seeds_and_clusters(self):
        a = FaultPlan(seed=1, churn_rate=0.5)
        b = FaultPlan(seed=2, churn_rate=0.5)
        rounds = range(1, 40)
        assert [a.cluster_offline("agg1", r) for r in rounds] != [
            b.cluster_offline("agg1", r) for r in rounds
        ]
        assert [a.cluster_offline("agg1", r) for r in rounds] != [
            a.cluster_offline("agg2", r) for r in rounds
        ]

    def test_outage_windows_and_recovery(self):
        plan = FaultPlan(
            seed=0,
            outages=[
                ReplicaOutage("storage-0", 10.0, 20.0),
                ReplicaOutage("storage-0", 15.0, 30.0),  # overlaps: merged
                ReplicaOutage("storage-1", 50.0, 60.0),
            ],
        )
        assert plan.replica_windows("storage-0") == [(10.0, 30.0)]
        assert plan.replica_down("storage-0", 10.0)
        assert not plan.replica_down("storage-0", 30.0)  # recovered exactly at end
        assert plan.recovery_time("storage-0", 12.0) == 30.0
        assert plan.recovery_time("storage-0", 40.0) == 40.0
        assert plan.outage_seconds == pytest.approx(30.0)

    def test_partitions_are_order_insensitive(self):
        plan = FaultPlan(seed=0, partitions=[WanPartition("b", "a", 5.0, 15.0)])
        assert plan.partitioned("a", "b", 10.0)
        assert plan.partitioned("b", "a", 10.0)
        assert not plan.partitioned("a", "b", 20.0)
        assert not plan.partitioned("a", "a", 10.0)
        assert plan.partition_windows("a", "b") == [(5.0, 15.0)]
        assert plan.partition_seconds == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(churn_rate=1.0)
        with pytest.raises(ValueError):
            ReplicaOutage("r", 5.0, 5.0)
        with pytest.raises(ValueError):
            WanPartition("a", "a", 0.0, 1.0)

    def test_from_config_staggers_episodes(self):
        config = fault_config(
            replica_outages=4,
            storage_replicas=2,
            outage_duration_s=10.0,
            wan_partitions=2,
            partition_duration_s=5.0,
        )
        plan = FaultPlan.from_config(config, ["storage-0", "storage-1"], horizon_s=1000.0)
        starts = [o.start for o in plan.outages]
        # Round-robin over replicas, strictly increasing staggered starts
        # inside the 5-70% traffic window.
        assert [o.replica for o in plan.outages] == [
            "storage-0", "storage-1", "storage-0", "storage-1"
        ]
        assert starts == sorted(starts)
        assert all(50.0 <= s <= 700.0 for s in starts)
        assert all(o.end - o.start == pytest.approx(10.0) for o in plan.outages)
        assert len(plan.partitions) == 2
        assert {(p.site_a, p.site_b) for p in plan.partitions} == {("storage-0", "storage-1")}

    def test_from_config_uses_fault_seed_when_given(self):
        base = dict(replica_outages=1, storage_replicas=2)
        default_seed = FaultPlan.from_config(
            fault_config(**base), ["storage-0", "storage-1"], 1000.0
        )
        pinned = FaultPlan.from_config(
            fault_config(fault_seed=99, **base), ["storage-0", "storage-1"], 1000.0
        )
        assert default_seed.outages != pinned.outages


# ------------------------------------------------------------------------ circuit breaker
class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(3.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert breaker.open_seconds == pytest.approx(10.0)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        assert breaker.state == CircuitBreaker.CLOSED  # streak broken at 2.0

    def test_open_fails_fast_until_cooldown_then_half_opens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure(5.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(14.9)
        assert breaker.would_allow(15.0)  # pure query: no transition
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.allow(15.0)  # admits the half-open trial
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_trial_outcomes(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_success(10.0)
        assert breaker.state == CircuitBreaker.CLOSED
        # Failure in half-open re-trips for another full cooldown.
        breaker.record_failure(11.0)
        assert breaker.allow(21.0)
        breaker.record_failure(21.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 3
        assert breaker.open_seconds == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0, cooldown_s=1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=1, cooldown_s=0.0)


class TestResiliencePolicy:
    def test_backoff_is_exponential_with_jitter(self):
        policy = ResiliencePolicy(backoff_base_s=0.5, backoff_jitter=0.1)
        assert policy.backoff(0, 0.0) == pytest.approx(0.5)
        assert policy.backoff(1, 0.0) == pytest.approx(1.0)
        assert policy.backoff(2, 1.0) == pytest.approx(2.0 * 1.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(retry_max=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_base_s=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_jitter=-0.1)
        with pytest.raises(ValueError):
            ResiliencePolicy(breaker_threshold=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(breaker_cooldown_s=0.0)


# --------------------------------------------------------------- scheduler fault windows
class TestSchedulerFaultWindows:
    def test_outage_delays_transfers_touching_the_endpoint(self):
        scheduler = LinkScheduler(make_network())  # 1 MB/s
        scheduler.set_outages("storage", [(5.0, 20.0)])
        hit = scheduler.transfer("a", "storage", 1_000_000, at=6.0)
        assert hit.started_at == pytest.approx(20.0)  # waits out the outage
        assert hit.queued_time == pytest.approx(14.0)
        # An unrelated pair is untouched.
        clear = scheduler.transfer("b", "c", 1_000_000, at=6.0)
        assert clear.started_at == pytest.approx(6.0)

    def test_transfer_cannot_straddle_a_window(self):
        scheduler = LinkScheduler(make_network())
        scheduler.set_outages("storage", [(2.0, 10.0)])
        # Requested at 1.5 with a 1s duration: it would overlap 2.0, so it
        # starts after recovery instead.
        scheduled = scheduler.transfer("a", "storage", 1_000_000, at=1.5)
        assert scheduled.started_at == pytest.approx(10.0)

    def test_partition_blocks_cross_site_pairs_only(self):
        scheduler = LinkScheduler(make_network())
        scheduler.set_site("agg1", "site-a")
        scheduler.set_site("agg2", "site-b")
        scheduler.set_site("agg3", "site-a")
        scheduler.set_partition("site-b", "site-a", [(0.0, 30.0)])
        cross = scheduler.transfer("agg1", "agg2", 1_000_000, at=0.0)
        assert cross.started_at == pytest.approx(30.0)
        same_site = scheduler.transfer("agg1", "agg3", 1_000_000, at=0.0)
        assert same_site.started_at == pytest.approx(0.0)

    def test_setters_validate_merge_and_clear(self):
        scheduler = LinkScheduler(make_network())
        epoch = scheduler.epoch
        scheduler.set_outages("s", [(10.0, 20.0), (15.0, 25.0)])
        assert scheduler.outage_windows("s") == [(10.0, 25.0)]
        assert scheduler.epoch > epoch
        scheduler.set_outages("s", [])
        assert scheduler.outage_windows("s") == []
        with pytest.raises(ValueError):
            scheduler.set_partition("x", "x", [(0.0, 1.0)])

    def test_no_windows_keeps_planning_identical(self):
        plain = LinkScheduler(make_network())
        faulted = LinkScheduler(make_network())
        faulted.set_outages("elsewhere", [(0.0, 100.0)])
        for at in (0.0, 0.5, 3.0, 1.0):
            a = plain.transfer("a", "storage", 500_000, at=at)
            b = faulted.transfer("a", "storage", 500_000, at=at)
            assert (a.started_at, a.finished_at) == (b.started_at, b.finished_at)


# ------------------------------------------------------------------- actor resilience
class TestNetworkActorResilience:
    def make_actor(self, plan: FaultPlan, **kwargs) -> NetworkActor:
        return NetworkActor(
            topology=two_site_topology(),
            model_bytes=1_000_000,
            faults=plan,
            resilience=kwargs.pop("resilience", ResiliencePolicy()),
            resilience_seed=kwargs.pop("resilience_seed", 1),
            **kwargs,
        )

    def outage_plan(self) -> FaultPlan:
        return FaultPlan(seed=1, outages=[ReplicaOutage("storage-0", 10.0, 60.0)])

    def test_failover_avoids_the_recovery_wait(self):
        actor = self.make_actor(self.outage_plan())
        elapsed = actor.upload("agg1", 1, at=20.0, object_ids=["cid1"])
        # Retries burn backoff, the breaker trips, and the transfer lands on
        # the healthy replica — orders of magnitude below the 40s recovery.
        assert elapsed < 5.0
        assert actor.retries > 0
        assert actor.failovers == 1
        assert actor.transfers("upload")[0].destination == "storage-1"
        assert actor._breakers["storage-0"].state == CircuitBreaker.OPEN

    def test_retry_max_zero_waits_out_the_outage(self):
        actor = self.make_actor(self.outage_plan(), resilience=ResiliencePolicy(retry_max=0))
        elapsed = actor.upload("agg1", 1, at=20.0, object_ids=["cid1"])
        assert elapsed > 39.0  # waits for the scheduled recovery at 60.0
        assert actor.retries == 0 and actor.failovers == 0
        assert actor.transfers("upload")[0].destination == "storage-0"
        assert actor.transfers("upload")[0].started_at == pytest.approx(60.0)

    def test_short_outage_is_ridden_out_by_backoff(self):
        plan = FaultPlan(seed=1, outages=[ReplicaOutage("storage-0", 19.9, 20.4)])
        actor = self.make_actor(plan)
        actor.upload("agg1", 1, at=20.0, object_ids=["cid1"])
        # The first backoff (>= 0.5s) already clears the 0.5s outage: no
        # failover, the home replica serves after a short wait.
        assert actor.retries >= 1
        assert actor.failovers == 0
        assert actor.transfers("upload")[0].destination == "storage-0"

    def test_graceful_degradation_when_every_replica_is_down(self):
        plan = FaultPlan(
            seed=1,
            outages=[
                ReplicaOutage("storage-0", 10.0, 60.0),
                ReplicaOutage("storage-1", 10.0, 55.0),
            ],
        )
        actor = self.make_actor(plan)
        actor.upload("agg1", 1, at=20.0, object_ids=["cid1"])
        transfer = actor.transfers("upload")[0]
        # Nowhere to fail over: the transfer waits for its replica's
        # scheduled recovery instead of erroring out.
        assert actor.failovers == 0
        assert transfer.started_at >= 55.0

    def test_breaker_open_fast_fails_subsequent_attempts(self):
        actor = self.make_actor(self.outage_plan())
        actor.upload("agg1", 1, at=20.0, object_ids=["cid1"])  # trips storage-0
        fast_fails = actor.fast_fails
        retries = actor.retries
        actor.upload("agg1", 1, at=21.0, object_ids=["cid2"])
        # Second attempt inside the cooldown: no new retries, immediate
        # fast-fail + failover.
        assert actor.fast_fails == fast_fails + 1
        assert actor.retries == retries
        assert actor.failovers == 2

    def test_partition_triggers_failover_to_reachable_site(self):
        plan = FaultPlan(seed=1, partitions=[WanPartition("storage-0", "storage-1", 0.0, 50.0)])
        actor = self.make_actor(plan, selection="least-loaded")
        # agg1 lives at storage-0; the partition only severs the cross-site
        # path, so its home replica stays reachable.
        actor.upload("agg1", 1, at=5.0, object_ids=["cid1"])
        assert actor.transfers("upload")[0].destination == "storage-0"

    def test_resilience_is_seed_deterministic(self):
        def drive(seed: int) -> tuple:
            actor = self.make_actor(self.outage_plan(), resilience_seed=seed)
            actor.upload("agg1", 2, at=20.0, object_ids=["c1", "c2"])
            actor.download("agg2", 1, at=22.0, object_ids=["c1"])
            events = [
                (t.source, t.destination, t.started_at, t.finished_at)
                for t, _ in actor._events
            ]
            return events, actor.retries, actor.backoff_wait_s, actor.failovers

        assert drive(7) == drive(7)
        # A different jitter seed shifts the backoff waits.
        assert drive(7)[2] != drive(8)[2]

    def test_resilience_totals_schema(self):
        actor = self.make_actor(self.outage_plan())
        totals = actor.resilience_totals()
        assert set(totals) == {
            "retries",
            "backoff_wait_s",
            "failovers",
            "breaker_trips",
            "breaker_open_s",
            "breaker_fast_fails",
            "dropped_clients",
            "fault_outage_s",
            "fault_partition_s",
        }
        assert totals["fault_outage_s"] == pytest.approx(50.0)


# ------------------------------------------------------------------------- configuration
class TestFaultConfigValidation:
    def test_knob_bounds(self):
        with pytest.raises(ValueError):
            fault_config(churn_rate=1.0)
        with pytest.raises(ValueError):
            fault_config(churn_rate=-0.1)
        with pytest.raises(ValueError):
            fault_config(replica_outages=-1)
        with pytest.raises(ValueError):
            fault_config(replica_outages=1, storage_replicas=2, outage_duration_s=0.0)
        with pytest.raises(ValueError):
            fault_config(retry_max=-1)
        with pytest.raises(ValueError):
            fault_config(backoff_base_s=0.0)
        with pytest.raises(ValueError):
            fault_config(breaker_threshold=0)
        with pytest.raises(ValueError):
            fault_config(breaker_cooldown_s=0.0)

    def test_link_level_faults_require_event_streams(self):
        with pytest.raises(ValueError):
            fault_config(event_streams=False, replica_outages=1)
        with pytest.raises(ValueError):
            fault_config(event_streams=False, wan_partitions=1, storage_replicas=2)
        # Churn is policy-level and works on the constant path.
        assert fault_config(event_streams=False, churn_rate=0.2).has_faults

    def test_partitions_require_two_replicas(self):
        with pytest.raises(ValueError):
            fault_config(wan_partitions=1, storage_replicas=1)

    def test_has_faults(self):
        assert not fault_config().has_faults
        assert fault_config(churn_rate=0.1).has_faults
        assert fault_config(replica_outages=1, storage_replicas=2).has_faults

    def test_cli_flags_reach_the_config(self):
        from repro.cli import _build_config, build_parser

        args = build_parser().parse_args(
            [
                "run",
                "--churn-rate", "0.1",
                "--replica-outages", "2",
                "--outage-duration", "30",
                "--storage-replicas", "2",
                "--wan-partitions", "1",
                "--partition-duration", "15",
                "--fault-seed", "42",
                "--retry-max", "5",
                "--backoff-base", "0.25",
                "--backoff-jitter", "0.2",
                "--breaker-threshold", "2",
                "--breaker-cooldown", "45",
            ]
        )
        config = _build_config(args, "cli-faults")
        assert config.churn_rate == 0.1
        assert config.replica_outages == 2
        assert config.outage_duration_s == 30.0
        assert config.wan_partitions == 1
        assert config.partition_duration_s == 15.0
        assert config.fault_seed == 42
        assert config.retry_max == 5
        assert config.backoff_base_s == 0.25
        assert config.backoff_jitter == 0.2
        assert config.breaker_threshold == 2
        assert config.breaker_cooldown_s == 45.0
        assert config.has_faults


# --------------------------------------------------------------------------- end to end
class TestFaultExperiments:
    def test_churn_marks_offline_rounds_in_both_paths(self):
        for event_streams in (True, False):
            runner = ExperimentRunner(
                fault_config(mode="sync", churn_rate=0.4, event_streams=event_streams)
            )
            result = runner.run()
            offline = [
                (a.name, r.round_number)
                for a in result.aggregators
                for r in a.history
                if r.offline
            ]
            assert offline, "seed 3 at churn 0.4 must drop someone"
            assert runner.fault_plan is not None
            assert runner.fault_plan.dropped_clients >= len(set(offline))
            assert result.comm_metrics["dropped_clients"] == float(
                runner.fault_plan.dropped_clients
            )

    def test_churn_is_layered_on_availability(self):
        """Churn draws are independent of the availability stream: enabling
        churn on an availability<1 run keeps the availability draws as-is
        (same RNG stream) and only adds drops."""
        clusters = edge_cluster_configs(num_clients=2)
        for cluster in clusters:
            cluster.availability = 0.7
        base = dict(
            workload=cifar10_workload(rounds=2, samples_per_class=10, image_size=8),
            clusters=clusters,
            mode="sync",
            rounds=4,
            seed=51,
            monitor_resources=False,
        )
        plain = ExperimentRunner(ExperimentConfig(name="avail", **base)).run()
        churned = ExperimentRunner(
            ExperimentConfig(name="avail+churn", churn_rate=0.3, **base)
        ).run()
        offline = lambda result: {
            (a.name, r.round_number)
            for a in result.aggregators
            for r in a.history
            if r.offline
        }
        assert offline(plain) <= offline(churned)

    def test_outage_run_accounts_fault_activity(self):
        result = ExperimentRunner(
            fault_config(
                replica_outages=2,
                storage_replicas=2,
                replication_mode="lazy",
                outage_duration_s=80.0,
                replica_selection="least-loaded",
            )
        ).run()
        metrics = result.comm_metrics
        assert metrics["fault_outage_s"] == pytest.approx(160.0)
        assert metrics["retries"] > 0
        assert metrics["failovers"] > 0
        assert metrics["breaker_trips"] > 0
        assert metrics["breaker_open_s"] > 0
        table = format_comm_table(result)
        assert "faults:" in table and "failovers" in table

    def test_failover_beats_retry_max_zero_on_two_replica_outages(self):
        """The acceptance scenario: staggered outages on both replicas.

        With resilience on, transfers aimed at the down replica fail over to
        the healthy one; with ``retry_max=0`` they wait out each recovery on
        the link schedule.  Failover must measurably reduce the makespan.
        """
        knobs = dict(
            replica_outages=2,
            storage_replicas=2,
            replication_mode="lazy",
            outage_duration_s=80.0,
            replica_selection="least-loaded",
        )
        resilient = ExperimentRunner(fault_config(**knobs)).run()
        degraded = ExperimentRunner(fault_config(retry_max=0, **knobs)).run()
        resilient_makespan = max(a.total_time for a in resilient.aggregators)
        degraded_makespan = max(a.total_time for a in degraded.aggregators)
        assert resilient.comm_metrics["failovers"] > 0
        assert degraded.comm_metrics["failovers"] == 0
        assert resilient_makespan < degraded_makespan * 0.95

    def test_csv_exports_fault_columns(self, tmp_path):
        import csv

        result = ExperimentRunner(
            fault_config(
                churn_rate=0.3,
                replica_outages=1,
                storage_replicas=2,
                outage_duration_s=80.0,
            )
        ).run()
        path = save_results_csv([result], tmp_path / "faults.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["dropped_clients"] == f"{result.comm_metrics['dropped_clients']:.0f}"
        assert float(rows[0]["dropped_clients"]) > 0
        for column in ("retries", "breaker_open_s", "failovers"):
            assert rows[0][column] != ""


# --------------------------------------------------------------- seeded-determinism fuzz
class TestSeededDeterminismFuzz:
    """Randomized fault plans replay bit-identically under the same seed."""

    def fuzzed_knobs(self, fuzz_seed: int) -> dict:
        rng = np.random.default_rng(fuzz_seed)
        return dict(
            churn_rate=float(rng.uniform(0.05, 0.4)),
            replica_outages=int(rng.integers(1, 4)),
            outage_duration_s=float(rng.uniform(20.0, 90.0)),
            wan_partitions=int(rng.integers(0, 3)),
            partition_duration_s=float(rng.uniform(10.0, 60.0)),
            storage_replicas=2,
            replication_mode=("eager", "lazy")[int(rng.integers(0, 2))],
            replica_selection=("affinity", "least-loaded")[int(rng.integers(0, 2))],
            fault_seed=int(rng.integers(0, 2**31)),
        )

    def run_once(self, mode: str, knobs: dict, tmp_path, tag: str):
        runner = ExperimentRunner(fault_config(mode=mode, **knobs))
        result = runner.run()
        events = [
            (t.source, t.destination, t.num_bytes, t.requested_at, t.started_at, t.finished_at)
            for t in runner.comm.network.scheduler.log
        ]
        csv_path = save_results_csv([result], tmp_path / f"{tag}.csv")
        return result, events, csv_path.read_text()

    @pytest.mark.parametrize("fuzz_seed", [101, 202, 303])
    def test_same_seed_replays_identically(self, fuzz_seed, tmp_path):
        knobs = self.fuzzed_knobs(fuzz_seed)
        mode = ("sync", "semi", "gossip")[fuzz_seed % 3]
        first, first_events, first_csv = self.run_once(mode, knobs, tmp_path, "first")
        second, second_events, second_csv = self.run_once(mode, knobs, tmp_path, "second")
        assert first_events == second_events
        assert first.comm_metrics == second.comm_metrics
        assert first_csv == second_csv
        for a, b in zip(first.aggregators, second.aggregators):
            assert a.total_time == b.total_time
            assert a.global_accuracy == b.global_accuracy
            assert [r.sim_time for r in a.history] == [r.sim_time for r in b.history]
            assert [r.offline for r in a.history] == [r.offline for r in b.history]

    def test_different_fault_seeds_draw_different_plans(self):
        knobs = self.fuzzed_knobs(101)
        first = ExperimentRunner(fault_config(**knobs))
        first.build()
        second = ExperimentRunner(fault_config(**{**knobs, "fault_seed": knobs["fault_seed"] + 1}))
        second.build()
        assert first.fault_plan.outages != second.fault_plan.outages
        rounds = range(1, 30)
        assert [first.fault_plan.cluster_offline("agg1", r) for r in rounds] != [
            second.fault_plan.cluster_offline("agg1", r) for r in rounds
        ]
