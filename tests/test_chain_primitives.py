"""Tests for crypto, accounts, transactions, blocks, events and Clique."""

from __future__ import annotations

import pytest

from repro.chain.account import Account
from repro.chain.block import Block, BlockHeader
from repro.chain.clique import CliqueEngine, CliqueError
from repro.chain.crypto import (
    KeyPair,
    address_from_public_key,
    hash_payload,
    keccak_hex,
    sign_payload,
    verify_signature,
)
from repro.chain.events import Event, EventBus, EventFilter
from repro.chain.transaction import Transaction


class TestCrypto:
    def test_keccak_hex_deterministic(self):
        assert keccak_hex(b"abc") == keccak_hex(b"abc")
        assert keccak_hex(b"abc") != keccak_hex(b"abd")

    def test_hash_payload_order_independent(self):
        assert hash_payload({"a": 1, "b": 2}) == hash_payload({"b": 2, "a": 1})

    def test_keypair_deterministic_from_seed(self):
        assert KeyPair.generate(seed=7).address == KeyPair.generate(seed=7).address

    def test_keypair_random_unique(self):
        assert KeyPair.generate().address != KeyPair.generate().address

    def test_address_format(self):
        kp = KeyPair.generate(seed=1)
        assert kp.address.startswith("0x")
        assert len(kp.address) == 42
        assert address_from_public_key(kp.public_key) == kp.address

    def test_signature_verifies(self):
        kp = KeyPair.generate(seed=2)
        payload = {"value": 42}
        sig = kp.sign(payload)
        assert verify_signature(kp.public_key, kp.private_key, payload, sig)

    def test_signature_rejects_tampered_payload(self):
        kp = KeyPair.generate(seed=3)
        sig = kp.sign({"value": 42})
        assert not verify_signature(kp.public_key, kp.private_key, {"value": 43}, sig)

    def test_signature_rejects_wrong_key(self):
        kp = KeyPair.generate(seed=4)
        other = KeyPair.generate(seed=5)
        sig = kp.sign({"v": 1})
        assert not verify_signature(other.public_key, other.private_key, {"v": 1}, sig)

    def test_sign_payload_matches_keypair_sign(self):
        kp = KeyPair.generate(seed=6)
        assert kp.sign({"x": 1}) == sign_payload(kp.private_key, {"x": 1})


class TestAccount:
    def test_nonce_advances(self):
        account = Account.create(seed=1)
        assert account.next_nonce() == 0
        assert account.next_nonce() == 1
        assert account.nonce == 2

    def test_create_funds_balance(self):
        account = Account.create(seed=2, balance=500.0)
        assert account.balance == 500.0

    def test_address_is_keypair_address(self):
        account = Account.create(seed=3)
        assert account.address == account.keypair.address


class TestTransaction:
    def test_create_signs_and_orders(self):
        account = Account.create(seed=1)
        tx1 = Transaction.create(account, "c", "m", {"a": 1})
        tx2 = Transaction.create(account, "c", "m", {"a": 2})
        assert tx1.nonce == 0 and tx2.nonce == 1
        assert tx1.signature and tx1.tx_hash != tx2.tx_hash

    def test_hash_includes_signature(self):
        account = Account.create(seed=2)
        tx = Transaction.create(account, "c", "m", {})
        original_hash = tx.tx_hash
        tx.signature = "0" * 64
        assert tx.tx_hash != original_hash

    def test_rejects_nonpositive_gas(self):
        account = Account.create(seed=3)
        with pytest.raises(ValueError):
            Transaction.create(account, "c", "m", {}, gas_limit=0)

    def test_estimated_size_positive(self):
        account = Account.create(seed=4)
        tx = Transaction.create(account, "c", "m", {"payload": "x" * 100})
        assert tx.estimated_size_bytes() > 100


class TestBlocks:
    def test_header_hash_changes_with_content(self):
        header = BlockHeader(number=1, parent_hash="0x0", timestamp=0.0, sealer="0xabc", transactions_root="r")
        h1 = header.hash()
        header.timestamp = 1.0
        assert header.hash() != h1

    def test_transactions_root_depends_on_order(self):
        account = Account.create(seed=1)
        tx1 = Transaction.create(account, "c", "m", {"i": 1})
        tx2 = Transaction.create(account, "c", "m", {"i": 2})
        assert Block.compute_transactions_root([tx1, tx2]) != Block.compute_transactions_root([tx2, tx1])

    def test_block_size_estimate(self):
        account = Account.create(seed=2)
        tx = Transaction.create(account, "c", "m", {})
        block = Block(
            header=BlockHeader(number=1, parent_hash="0x0", timestamp=0.0, sealer="0x", transactions_root="r"),
            transactions=[tx],
        )
        assert block.estimated_size_bytes() > 200


class TestEvents:
    def test_append_and_query(self):
        bus = EventBus()
        bus.append(Event(contract="c", name="A", payload={"x": 1}, block_number=1))
        bus.append(Event(contract="c", name="B", payload={"x": 2}, block_number=2))
        assert len(bus) == 2
        assert len(bus.query(EventFilter(name="A"))) == 1

    def test_filter_by_block_range(self):
        bus = EventBus()
        for i in range(5):
            bus.append(Event(contract="c", name="E", payload={}, block_number=i))
        assert len(bus.query(EventFilter(from_block=2, to_block=3))) == 2

    def test_filter_by_contract(self):
        bus = EventBus()
        bus.append(Event(contract="a", name="E", payload={}, block_number=0))
        bus.append(Event(contract="b", name="E", payload={}, block_number=0))
        assert len(bus.query(EventFilter(contract="a"))) == 1

    def test_subscription_receives_matching_events(self):
        bus = EventBus()
        received = []
        bus.subscribe(received.append, EventFilter(name="Wanted"))
        bus.append(Event(contract="c", name="Wanted", payload={}, block_number=0))
        bus.append(Event(contract="c", name="Other", payload={}, block_number=0))
        assert len(received) == 1
        assert received[0].name == "Wanted"

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        received = []
        unsubscribe = bus.subscribe(received.append)
        unsubscribe()
        bus.append(Event(contract="c", name="E", payload={}, block_number=0))
        assert received == []

    def test_log_index_assigned_in_order(self):
        bus = EventBus()
        bus.append(Event(contract="c", name="E", payload={}, block_number=0))
        second = bus.append(Event(contract="c", name="E", payload={}, block_number=0))
        assert second.log_index == 1


class TestClique:
    def test_in_turn_rotation(self, validator_accounts):
        engine = CliqueEngine(validator_accounts)
        signers = engine.signer_addresses
        assert engine.in_turn_signer(0) == signers[0]
        assert engine.in_turn_signer(1) == signers[1]
        assert engine.in_turn_signer(len(signers)) == signers[0]

    def test_requires_signers(self):
        with pytest.raises(CliqueError):
            CliqueEngine([])

    def test_rejects_duplicate_signers(self, validator_accounts):
        with pytest.raises(CliqueError):
            CliqueEngine([validator_accounts[0], validator_accounts[0]])

    def test_seal_and_verify(self, validator_accounts):
        engine = CliqueEngine(validator_accounts)
        sealer = engine.signer_addresses[1]
        header = BlockHeader(number=1, parent_hash="0x0", timestamp=0.0, sealer=sealer, transactions_root="r")
        engine.seal(header)
        block = Block(header=header)
        engine.verify_seal(block, [])

    def test_verify_rejects_unauthorized_sealer(self, validator_accounts):
        engine = CliqueEngine(validator_accounts)
        outsider = Account.create(seed=999)
        header = BlockHeader(number=1, parent_hash="0x0", timestamp=0.0, sealer=outsider.address, transactions_root="r")
        header.seal_signature = outsider.sign({"header": header.hash()})
        with pytest.raises(CliqueError):
            engine.verify_seal(Block(header=header), [])

    def test_verify_rejects_forged_signature(self, validator_accounts):
        engine = CliqueEngine(validator_accounts)
        sealer = engine.signer_addresses[0]
        header = BlockHeader(number=1, parent_hash="0x0", timestamp=0.0, sealer=sealer, transactions_root="r")
        header.seal_signature = "00" * 32
        with pytest.raises(CliqueError):
            engine.verify_seal(Block(header=header), [])

    def test_recently_sealed_prevents_consecutive_blocks(self, validator_accounts):
        engine = CliqueEngine(validator_accounts)
        sealer = engine.signer_addresses[0]
        header = BlockHeader(number=1, parent_hash="0x0", timestamp=0.0, sealer=sealer, transactions_root="r")
        engine.seal(header)
        previous_block = Block(header=header)
        assert engine.recently_sealed([previous_block], sealer)
        next_sealer = engine.select_sealer([previous_block], 2)
        assert next_sealer != sealer

    def test_seal_delay_out_of_turn_longer(self, validator_accounts):
        engine = CliqueEngine(validator_accounts, block_period=2.0)
        in_turn = engine.in_turn_signer(5)
        out_of_turn = [a for a in engine.signer_addresses if a != in_turn][0]
        assert engine.seal_delay(5, out_of_turn) > engine.seal_delay(5, in_turn)

    def test_seal_unauthorized_raises(self, validator_accounts):
        engine = CliqueEngine(validator_accounts)
        header = BlockHeader(number=1, parent_hash="0x0", timestamp=0.0, sealer="0xdead", transactions_root="r")
        with pytest.raises(CliqueError):
            engine.seal(header)
