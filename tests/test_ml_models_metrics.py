"""Tests for model containers, the registry and evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score, evaluate_model, top_k_accuracy
from repro.ml.models import MLP, MiniVGG, SimpleCNN, available_models, build_model, count_parameters
from repro.ml.optim import SGD


class TestMLP:
    def test_training_reduces_loss(self, tabular_dataset):
        model = MLP(input_dim=10, hidden_dims=(16,), num_classes=3, seed=0)
        losses = model.fit(
            tabular_dataset.x,
            tabular_dataset.y,
            epochs=5,
            batch_size=32,
            optimizer=SGD(learning_rate=0.05),
            rng=np.random.default_rng(0),
        )
        assert losses[-1] < losses[0]

    def test_learns_separable_data(self, tabular_dataset):
        model = MLP(input_dim=10, hidden_dims=(32,), num_classes=3, seed=1)
        model.fit(
            tabular_dataset.x,
            tabular_dataset.y,
            epochs=20,
            batch_size=32,
            optimizer=SGD(learning_rate=0.1),
            rng=np.random.default_rng(1),
        )
        _, accuracy = model.evaluate(tabular_dataset.x, tabular_dataset.y)
        assert accuracy > 0.8

    def test_clone_copies_weights(self):
        model = MLP(input_dim=4, num_classes=2, seed=0)
        clone = model.clone()
        for a, b in zip(model.get_weights(), clone.get_weights()):
            assert np.allclose(a, b)

    def test_clone_is_independent(self):
        model = MLP(input_dim=4, num_classes=2, seed=0)
        clone = model.clone()
        clone.set_weights([np.zeros_like(w) for w in clone.get_weights()])
        assert not all(np.allclose(a, 0) for a in model.get_weights())

    def test_fit_rejects_mismatched_xy(self):
        model = MLP(input_dim=4, num_classes=2, seed=0)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 4)), np.zeros(2, dtype=int))

    def test_evaluate_empty_raises(self):
        model = MLP(input_dim=4, num_classes=2, seed=0)
        with pytest.raises(ValueError):
            model.evaluate(np.zeros((0, 4)), np.zeros(0, dtype=int))


class TestCNNModels:
    def test_simple_cnn_forward_shape(self, small_cnn, tiny_image_dataset):
        train, _ = tiny_image_dataset
        logits = small_cnn.predict(train.x[:4])
        assert logits.shape == (4, 10)

    def test_simple_cnn_weight_round_trip(self, small_cnn):
        weights = small_cnn.get_weights()
        small_cnn.set_weights([np.zeros_like(w) for w in weights])
        small_cnn.set_weights(weights)
        for a, b in zip(small_cnn.get_weights(), weights):
            assert np.allclose(a, b)

    def test_set_weights_shape_mismatch(self, small_cnn):
        weights = small_cnn.get_weights()
        weights[0] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            small_cnn.set_weights(weights)

    def test_simple_cnn_learns(self, tiny_image_dataset):
        train, test = tiny_image_dataset
        model = SimpleCNN(image_size=8, num_classes=10, conv_channels=(6, 12), hidden_dim=32, seed=0)
        model.fit(train.x, train.y, epochs=6, batch_size=16, optimizer=SGD(0.05, momentum=0.9), rng=np.random.default_rng(0))
        _, accuracy = model.evaluate(test.x, test.y)
        assert accuracy > 0.5

    def test_mini_vgg_shapes_and_params(self):
        model = MiniVGG(image_size=16, num_classes=20, base_channels=4, hidden_dim=32, seed=0)
        assert model.num_parameters() > 1000
        out = model.predict(np.random.default_rng(0).normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 20)

    def test_mini_vgg_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            MiniVGG(image_size=2, num_classes=10)

    def test_simple_cnn_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            SimpleCNN(image_size=2, num_classes=10)

    def test_predict_classes_matches_argmax(self, small_cnn, tiny_image_dataset):
        train, _ = tiny_image_dataset
        logits = small_cnn.predict(train.x[:6])
        assert np.array_equal(small_cnn.predict_classes(train.x[:6]), logits.argmax(axis=1))


class TestRegistry:
    def test_available_models_listed(self):
        names = available_models()
        assert "simple_cnn" in names and "mini_vgg" in names and "mlp" in names

    def test_build_model_by_name(self):
        model = build_model("simple_cnn", image_size=8, num_classes=10, seed=0)
        assert isinstance(model, SimpleCNN)

    def test_build_model_alias(self):
        model = build_model("vgg", image_size=16, num_classes=5, seed=0)
        assert isinstance(model, MiniVGG)

    def test_build_model_unknown(self):
        with pytest.raises(ValueError):
            build_model("resnet50")

    def test_count_parameters(self):
        model = MLP(input_dim=4, hidden_dims=(8,), num_classes=2, seed=0)
        expected = 4 * 8 + 8 + 8 * 2 + 2
        assert count_parameters(model) == expected


class TestMetrics:
    def test_accuracy_score(self):
        assert accuracy_score(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_score_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))

    def test_accuracy_score_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([1]), np.array([1, 2]))

    def test_top_k_accuracy_includes_lower_ranked(self):
        logits = np.array([[0.1, 0.9, 0.5], [0.9, 0.1, 0.5]])
        y = np.array([2, 2])
        assert top_k_accuracy(y, logits, k=1) == 0.0
        assert top_k_accuracy(y, logits, k=2) == 1.0

    def test_top_k_accuracy_k_clipped(self):
        logits = np.array([[0.1, 0.9]])
        assert top_k_accuracy(np.array([0]), logits, k=10) == 1.0

    def test_top_k_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.array([0]), np.array([[1.0, 2.0]]), k=0)

    def test_evaluate_model_keys(self, small_cnn, tiny_image_dataset):
        _, test = tiny_image_dataset
        report = evaluate_model(small_cnn, test.x, test.y)
        assert set(report) == {"loss", "accuracy", "top5_accuracy"}
        assert report["top5_accuracy"] >= report["accuracy"]
