"""Bit-identity pins for :mod:`repro.simnet.units`.

The units helpers exist so conversion sites can migrate off magic literals
(``1e6``, ``4e6``, ``20e6``) without changing a single bit of any result:
each helper's float operations (and their order) must be exactly those of
the literal expression it replaced.  These tests pin that equivalence with
``==`` on floats — deliberately, no tolerance — across awkward values
(subnormal-adjacent, non-dyadic, huge).  The suite-wide bit-identity tests
would catch a drift too, but only through a whole simulation; these fail
at the offending helper directly.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.simnet.units import (
    BYTES_PER_FLOAT32,
    MB,
    bytes_over_bandwidth,
    bytes_over_scaled_bandwidth,
    float32_model_bytes,
    mbytes_per_s_to_bytes_per_s,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: awkward float operands: non-dyadic, tiny, huge, and typical config values.
BANDWIDTHS = [94.0, 12.5, 0.1, 3.337, 1e-9, 7.25e8, 1.0000000000000002]
SIZES = [0.0, 1.0, 4.0, 123456789.0, 6.4e7, 2.5e12, 3.0000000000000004e5]


class TestBitIdentity:
    def test_mb_is_the_integer_million_and_equals_the_float_literal(self):
        assert MB == 10**6
        assert isinstance(MB, int)
        assert float(MB) == 1e6

    @pytest.mark.parametrize("bandwidth", BANDWIDTHS)
    def test_mbytes_per_s_conversion_matches_the_literal(self, bandwidth):
        assert mbytes_per_s_to_bytes_per_s(bandwidth) == bandwidth * 1e6

    @pytest.mark.parametrize("bandwidth", BANDWIDTHS)
    @pytest.mark.parametrize("size", SIZES)
    def test_bytes_over_bandwidth_matches_the_transfer_time_literal(self, size, bandwidth):
        assert bytes_over_bandwidth(size, bandwidth) == size / (bandwidth * 1e6)

    @pytest.mark.parametrize("bandwidth", BANDWIDTHS)
    @pytest.mark.parametrize("size", SIZES)
    def test_scaled_bandwidth_matches_the_folded_constants(self, size, bandwidth):
        # The timing model's historical literals were scale * 1e6 folded by
        # hand: 4e6 for memory-bound aggregation, 20e6 for similarity
        # scoring.  scale * MB stays exact integer arithmetic, so the one
        # float multiply sees the identical constant.
        assert bytes_over_scaled_bandwidth(size, bandwidth, 4) == size / (bandwidth * 4e6)
        assert bytes_over_scaled_bandwidth(size, bandwidth, 20) == size / (bandwidth * 20e6)

    def test_float32_model_bytes_matches_the_literal(self):
        assert BYTES_PER_FLOAT32 == 4
        for parameters in (0, 1, 62006, 1_200_000):
            assert float32_model_bytes(parameters) == int(parameters * 4)
            assert isinstance(float32_model_bytes(parameters), int)


class TestDeprecationHygiene:
    def test_importing_the_tree_raises_no_deprecation_warnings(self):
        # The alias shims (bandwidth_mbps and friends) must warn on *use*,
        # never on import: CI runs this same guard so a future module-level
        # alias read cannot slip in.
        result = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro.cli, repro.core.config, repro.simnet.hardware",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr

    def test_alias_use_still_warns(self):
        from repro.simnet.hardware import HardwareProfile

        profile = HardwareProfile(
            name="fixture",
            samples_per_second=1000.0,
            bandwidth_mbytes_per_s=94.0,
            latency_s=0.01,
            memory_mb=1024.0,
            train_cpu_percent=50.0,
        )
        with pytest.warns(DeprecationWarning):
            assert profile.bandwidth_mbps == 94.0  # detlint: ignore[UNIT003]
