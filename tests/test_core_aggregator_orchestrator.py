"""Tests for the UnifyFL aggregator and the Sync/Async orchestrators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain.account import Account
from repro.chain.blockchain import Blockchain
from repro.core.aggregator import UnifyFLAggregator
from repro.core.attacks import SignFlipAttack
from repro.core.config import ClusterConfig, cifar10_workload
from repro.core.contract import UnifyFLContract
from repro.core.orchestrator import AsyncOrchestrator, SemiSyncOrchestrator, SyncOrchestrator
from repro.core.scorer import AccuracyScorer
from repro.core.timing import ClusterTimingModel
from repro.datasets.partition import IIDPartitioner
from repro.datasets.synthetic import SyntheticCIFAR10
from repro.fl.client import Client, ClientConfig
from repro.ipfs.swarm import IPFSSwarm
from repro.ml.models import SimpleCNN
from repro.ml.tensor_utils import weights_allclose
from repro.simnet.hardware import DOCKER_CONTAINER, EDGE_CPU_NODE
from repro.simnet.resources import ResourceMonitor


def build_federation(mode="sync", num_clusters=3, malicious=(), monitor=None, seed=0):
    """Hand-assemble a small federation without the ExperimentRunner."""
    workload = cifar10_workload(rounds=2, samples_per_class=12, image_size=8)
    factory = SyntheticCIFAR10(image_size=8, samples_per_class=12, test_samples_per_class=4, seed=seed)
    train, test = factory.splits()
    model = SimpleCNN(image_size=8, num_classes=10, conv_channels=(4, 8), hidden_dim=16, seed=seed)
    timing = ClusterTimingModel(workload, block_period=1.0, seed=seed)

    accounts = [Account.create(label=f"agg{i}", seed=900 + i + seed * 10) for i in range(num_clusters)]
    driver = Account.create(label="driver", seed=990 + seed * 10)
    chain = Blockchain(accounts, block_period=1.0)
    chain.register_account(driver)
    chain.deploy_contract(UnifyFLContract(mode=mode, scorer_seed=seed))
    swarm = IPFSSwarm()

    cluster_parts = IIDPartitioner(num_clusters, seed=seed).partition(train)
    score_parts = IIDPartitioner(num_clusters, seed=seed + 1).partition(test)

    aggregators = []
    for i in range(num_clusters):
        config = ClusterConfig(
            name=f"agg{i + 1}",
            num_clients=2,
            aggregation_policy="all",
            aggregator_profile=EDGE_CPU_NODE,
            client_profile=DOCKER_CONTAINER,
            malicious=(i in malicious),
        )
        client_parts = IIDPartitioner(2, seed=seed + 10 + i).partition(cluster_parts[i])
        clients = [
            Client(
                f"{config.name}-c{j}",
                model.clone(),
                part,
                config=ClientConfig(local_epochs=1, batch_size=8, learning_rate=0.05, seed=seed + j),
            )
            for j, part in enumerate(client_parts)
        ]
        aggregators.append(
            UnifyFLAggregator(
                config=config,
                workload=workload,
                account=accounts[i],
                chain=chain,
                ipfs_node=swarm.create_node(f"{config.name}-ipfs"),
                model_template=model,
                clients=clients,
                scorer=AccuracyScorer(model, score_parts[i]),
                eval_data=test,
                timing_model=timing,
                attack=SignFlipAttack() if i in malicious else None,
                resource_monitor=monitor,
                seed=seed + i,
            )
        )
    return chain, driver, aggregators, timing, test


class TestAggregatorUnit:
    def test_register_appears_on_contract(self):
        chain, driver, aggregators, timing, _ = build_federation()
        aggregators[0].register()
        assert aggregators[0].address in chain.call("unifyfl", "getAggregators")

    def test_submit_stores_on_ipfs_and_contract(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        for aggregator in aggregators:
            aggregator.register()
        aggregator = aggregators[0]
        cid, timing_record = aggregator.submit_local_model()
        assert timing_record.store_time > 0
        assert aggregator.ipfs.has_local(__import__("repro.ipfs.cid", fromlist=["parse_cid"]).parse_cid(cid))
        submission = chain.call("unifyfl", "getSubmission", {"cid": cid})
        assert submission["submitter"] == aggregator.address

    def test_fetch_weights_round_trip(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        for aggregator in aggregators:
            aggregator.register()
        cid, _ = aggregators[0].submit_local_model()
        fetched = aggregators[1].fetch_weights(cid)
        assert weights_allclose(fetched, aggregators[0].local_weights)

    def test_malicious_aggregator_submits_poisoned_weights(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async", malicious=(0,))
        for aggregator in aggregators:
            aggregator.register()
        cid, _ = aggregators[0].submit_local_model()
        fetched = aggregators[1].fetch_weights(cid)
        # Sign-flip: the stored model is the negation of the honest local model.
        assert weights_allclose(fetched, [-w for w in aggregators[0].local_weights])

    def test_build_global_model_without_peers_keeps_local(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        for aggregator in aggregators:
            aggregator.register()
        aggregator = aggregators[0]
        before = [np.array(w, copy=True) for w in aggregator.local_weights]
        aggregator.build_global_model()
        assert weights_allclose(aggregator.global_weights, before)

    def test_build_global_model_merges_peer(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        for aggregator in aggregators:
            aggregator.register()
        # Peer trains first so its submitted model actually differs from agg0's.
        aggregators[1].local_training_round()
        aggregators[1].submit_local_model()
        aggregators[0].build_global_model()
        # The merged model is no longer identical to agg0's own local model.
        assert not weights_allclose(aggregators[0].global_weights, aggregators[0].local_weights)

    def test_local_training_round_changes_local_weights(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        aggregator = aggregators[0]
        aggregator.register()
        before = [np.array(w, copy=True) for w in aggregator.local_weights]
        timing_record = aggregator.local_training_round()
        assert timing_record.client_training_time > 0
        assert not weights_allclose(before, aggregator.local_weights)

    def test_score_assigned_submits_scores(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        for aggregator in aggregators:
            aggregator.register()
        cid, _ = aggregators[0].submit_local_model()
        submission = chain.call("unifyfl", "getSubmission", {"cid": cid})
        scorer_agg = next(a for a in aggregators if a.address in submission["assigned_scorers"])
        scorer_agg.score_assigned()
        submission = chain.call("unifyfl", "getSubmission", {"cid": cid})
        assert scorer_agg.address in submission["scores"]
        assert 0.0 <= submission["scores"][scorer_agg.address] <= 1.0

    def test_record_round_tracks_metrics(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        aggregator = aggregators[0]
        aggregator.register()
        aggregator.build_global_model()
        aggregator.local_training_round()
        from repro.core.timing import RoundTiming

        record = aggregator.record_round(1, RoundTiming())
        assert 0.0 <= record.global_accuracy <= 1.0
        assert record.round_number == 1
        assert aggregator.final_record is record

    def test_clock_advances_with_activity(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        aggregator = aggregators[0]
        aggregator.register()
        assert aggregator.total_time() == 0.0
        aggregator.local_training_round()
        assert aggregator.total_time() > 0.0

    def test_malicious_without_attack_rejected(self):
        chain, driver, aggregators, timing, test = build_federation(mode="async")
        source = aggregators[0]
        bad_config = ClusterConfig(name="evil", num_clients=2, malicious=True)
        with pytest.raises(ValueError):
            UnifyFLAggregator(
                config=bad_config,
                workload=source.workload,
                account=Account.create(seed=1),
                chain=chain,
                ipfs_node=source.ipfs,
                model_template=source.model,
                clients=source.clients,
                scorer=source.scorer,
                eval_data=test,
                timing_model=timing,
            )

    def test_resource_monitor_receives_samples(self):
        monitor = ResourceMonitor()
        chain, driver, aggregators, timing, _ = build_federation(mode="async", monitor=monitor)
        aggregator = aggregators[0]
        aggregator.register()
        aggregator.local_training_round()
        assert "client" in monitor.process_types()
        assert "agg" in monitor.process_types()


class TestSyncOrchestrator:
    def test_two_rounds_complete(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="sync")
        orchestrator = SyncOrchestrator(chain, driver, aggregators, timing)
        result = orchestrator.run(2)
        assert result.rounds_completed == 2
        assert all(len(h) == 2 for h in result.histories.values())

    def test_all_aggregators_share_the_same_total_time(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="sync")
        orchestrator = SyncOrchestrator(chain, driver, aggregators, timing)
        result = orchestrator.run(2)
        times = list(result.total_times.values())
        assert max(times) - min(times) < 1e-6

    def test_idle_time_recorded(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="sync")
        orchestrator = SyncOrchestrator(chain, driver, aggregators, timing)
        result = orchestrator.run(1)
        assert any(idle > 0 for idle in result.idle_times.values())

    def test_every_aggregator_scored_peers(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="sync")
        SyncOrchestrator(chain, driver, aggregators, timing).run(1)
        records = chain.call("unifyfl", "getLatestModelsWithScores")
        assert len(records) == 3
        assert all(len(r["scores"]) == 2 for r in records)

    def test_tight_window_causes_stragglers(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="sync")
        orchestrator = SyncOrchestrator(
            chain, driver, aggregators, timing, training_window=0.5, scoring_window=5.0
        )
        result = orchestrator.run(2)
        assert sum(result.straggler_counts.values()) > 0

    def test_requires_aggregators(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="sync")
        with pytest.raises(ValueError):
            SyncOrchestrator(chain, driver, [], timing)

    def test_rejects_zero_rounds(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="sync")
        orchestrator = SyncOrchestrator(chain, driver, aggregators, timing)
        with pytest.raises(ValueError):
            orchestrator.run(0)


class TestSyncStragglerPath:
    """The straggler/late-submission path (Section 3.2's missed windows)."""

    def test_stragglers_submit_their_stale_model_next_round(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="sync")
        orchestrator = SyncOrchestrator(
            chain, driver, aggregators, timing, training_window=0.5, scoring_window=5.0
        )
        result = orchestrator.run(2)
        # The window is far too tight for anyone: every cluster straggles in
        # round 1, so no model reaches the contract during that round...
        assert chain.call("unifyfl", "roundSubmissionCount", {"round_number": 1}) == 0
        assert all(h[0].straggled for h in result.histories.values())
        # ...and every cluster opens round 2 by submitting its stale model.
        assert chain.call("unifyfl", "roundSubmissionCount", {"round_number": 2}) == len(aggregators)
        for history in result.histories.values():
            assert history[0].timing.store_time == 0.0
            assert history[1].timing.store_time > 0.0
        assert all(count == 2 for count in result.straggler_counts.values())

    def test_late_submissions_carry_the_next_round_number(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="sync")
        SyncOrchestrator(
            chain, driver, aggregators, timing, training_window=0.5, scoring_window=5.0
        ).run(2)
        records = chain.call("unifyfl", "getLatestModelsWithScores")
        assert records and all(r["round"] == 2 for r in records)

    def test_explicit_zero_training_window_is_honoured(self):
        # Regression: `training_window=0.0` used to be silently replaced by the
        # provisioned default because of a truthiness check.
        chain, driver, aggregators, timing, _ = build_federation(mode="sync")
        orchestrator = SyncOrchestrator(
            chain, driver, aggregators, timing, training_window=0.0, scoring_window=0.0
        )
        assert orchestrator.training_window == 0.0
        assert orchestrator.scoring_window == 0.0
        result = orchestrator.run(1)
        # A zero-length window means nobody can ever submit in time.
        assert all(count == 1 for count in result.straggler_counts.values())


class TestAsyncOrchestrator:
    def test_two_rounds_complete(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        orchestrator = AsyncOrchestrator(chain, driver, aggregators, timing)
        result = orchestrator.run(2)
        assert result.rounds_completed == 2
        assert all(len(h) == 2 for h in result.histories.values())

    def test_async_total_times_differ_across_clusters(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        # Make the hardware heterogeneous so clusters genuinely diverge in time.
        from repro.simnet.hardware import RASPBERRY_PI_400

        aggregators[0].config = ClusterConfig(
            name=aggregators[0].config.name, num_clients=2, client_profile=RASPBERRY_PI_400
        )
        result = AsyncOrchestrator(chain, driver, aggregators, timing).run(2)
        times = sorted(result.total_times.values())
        assert times[-1] > times[0]

    def test_async_faster_than_sync(self):
        sync_chain, sync_driver, sync_aggs, sync_timing, _ = build_federation(mode="sync", seed=2)
        sync_result = SyncOrchestrator(sync_chain, sync_driver, sync_aggs, sync_timing).run(2)
        async_chain, async_driver, async_aggs, async_timing, _ = build_federation(mode="async", seed=2)
        async_result = AsyncOrchestrator(async_chain, async_driver, async_aggs, async_timing).run(2)
        assert max(async_result.total_times.values()) < max(sync_result.total_times.values())

    def test_scores_eventually_submitted(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        AsyncOrchestrator(chain, driver, aggregators, timing).run(2)
        records = chain.call("unifyfl", "getLatestModelsWithScores")
        assert any(len(r["scores"]) > 0 for r in records)

    def test_no_idle_time_in_async(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        result = AsyncOrchestrator(chain, driver, aggregators, timing).run(2)
        assert all(idle == 0.0 for idle in result.idle_times.values())

    def test_round_timings_account_for_every_clock_second(self):
        # Regression: the end-of-run scoring drain advanced each cluster's
        # clock but recorded no timing, so summed round records understated
        # the cluster's total time.  The drain is now folded into the last
        # round record and the books balance exactly.
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        result = AsyncOrchestrator(chain, driver, aggregators, timing).run(2)
        for aggregator in aggregators:
            recorded = sum(r.timing.total_time for r in result.histories[aggregator.name])
            assert recorded == pytest.approx(aggregator.total_time(), abs=1e-9)

    def test_scheduling_goes_through_the_event_kernel(self):
        chain, driver, aggregators, timing, _ = build_federation(mode="async")
        orchestrator = AsyncOrchestrator(chain, driver, aggregators, timing)
        orchestrator.run(2)
        assert orchestrator.kernel is not None
        # One activation event per cluster round, all dispatched via the heap.
        assert orchestrator.kernel.events_processed == len(aggregators) * 2
        stats = orchestrator.kernel.queue.stats
        assert stats["pushes"] == stats["pops"] == len(aggregators) * 2


class TestSemiSyncOrchestrator:
    def _heterogeneous(self, seed=0):
        chain, driver, aggregators, timing, test = build_federation(mode="semi", seed=seed)
        # Slow one cluster down so clocks genuinely diverge and quorum waits occur.
        from repro.simnet.hardware import RASPBERRY_PI_400

        aggregators[0].config = ClusterConfig(
            name=aggregators[0].config.name, num_clients=2, client_profile=RASPBERRY_PI_400
        )
        return chain, driver, aggregators, timing

    def test_rounds_complete_for_every_cluster(self):
        chain, driver, aggregators, timing = self._heterogeneous()
        result = SemiSyncOrchestrator(chain, driver, aggregators, timing).run(2)
        assert result.mode == "semi"
        assert result.rounds_completed == 2
        assert all(len(h) == 2 for h in result.histories.values())

    def test_quorum_waits_produce_bounded_idle(self):
        chain, driver, aggregators, timing = self._heterogeneous()
        result = SemiSyncOrchestrator(
            chain, driver, aggregators, timing, quorum_k=2
        ).run(3)
        # Someone waited for a round to close (unlike async)...
        assert sum(result.idle_times.values()) > 0.0
        # ...but nobody waited longer than the default staleness bound (one
        # provisioned sync training window) per round.
        bound = timing.expected_training_window([a.config for a in aggregators])
        for history in result.histories.values():
            for record in history:
                assert record.timing.idle_time <= bound + 1e-9

    def test_quorum_of_one_degenerates_to_async(self):
        chain, driver, aggregators, timing = self._heterogeneous()
        result = SemiSyncOrchestrator(
            chain, driver, aggregators, timing, quorum_k=1
        ).run(2)
        assert all(idle == 0.0 for idle in result.idle_times.values())
        assert result.extras["staleness_closures"] == 0

    def test_small_staleness_bound_forces_staleness_closures(self):
        chain, driver, aggregators, timing = self._heterogeneous()
        result = SemiSyncOrchestrator(
            chain, driver, aggregators, timing, quorum_k=3, max_staleness=4.0
        ).run(2)
        assert result.extras["staleness_closures"] > 0

    def test_expired_deadline_closes_at_the_first_landing(self):
        # With a staleness bound far smaller than any round, every deadline
        # expires on an empty round; the round must then close as soon as one
        # submission lands, never by quorum.
        chain, driver, aggregators, timing = self._heterogeneous()
        result = SemiSyncOrchestrator(
            chain, driver, aggregators, timing, quorum_k=3, max_staleness=0.5
        ).run(2)
        assert result.extras["quorum_closures"] == 0
        assert result.extras["staleness_closures"] == result.extras["rounds_closed"] > 0

    def test_closures_are_recorded_in_time_order(self):
        chain, driver, aggregators, timing = self._heterogeneous()
        result = SemiSyncOrchestrator(chain, driver, aggregators, timing).run(3)
        closures = result.extras["closures"]
        assert len(closures) == result.extras["rounds_closed"] >= 1
        close_times = [c[1] for c in closures]
        assert close_times == sorted(close_times)
        assert all(c[2] in ("quorum", "staleness") for c in closures)

    def test_round_timings_account_for_every_clock_second(self):
        chain, driver, aggregators, timing = self._heterogeneous()
        result = SemiSyncOrchestrator(chain, driver, aggregators, timing).run(2)
        for aggregator in aggregators:
            recorded = sum(r.timing.total_time for r in result.histories[aggregator.name])
            assert recorded == pytest.approx(aggregator.total_time(), abs=1e-9)

    def test_deterministic_for_a_fixed_seed(self):
        def run(seed):
            chain, driver, aggregators, timing = self._heterogeneous(seed=seed)
            result = SemiSyncOrchestrator(chain, driver, aggregators, timing).run(2)
            return (
                result.total_times,
                result.idle_times,
                {n: [r.global_accuracy for r in h] for n, h in result.histories.items()},
                result.extras["closures"],
            )

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_invalid_parameters_rejected(self):
        chain, driver, aggregators, timing = self._heterogeneous()
        with pytest.raises(ValueError):
            SemiSyncOrchestrator(chain, driver, aggregators, timing, quorum_k=0)
        with pytest.raises(ValueError):
            SemiSyncOrchestrator(chain, driver, aggregators, timing, quorum_k=len(aggregators) + 1)
        with pytest.raises(ValueError):
            SemiSyncOrchestrator(chain, driver, aggregators, timing, max_staleness=0.0)

    def test_scores_eventually_submitted(self):
        chain, driver, aggregators, timing = self._heterogeneous()
        SemiSyncOrchestrator(chain, driver, aggregators, timing).run(2)
        records = chain.call("unifyfl", "getLatestModelsWithScores")
        assert any(len(r["scores"]) > 0 for r in records)

    def test_extras_reach_the_experiment_result_and_json(self, tmp_path):
        from repro.core.config import ExperimentConfig, edge_cluster_configs
        from repro.core.reporting import load_result_json, save_result_json
        from repro.core.runner import ExperimentRunner

        config = ExperimentConfig(
            name="semi-extras",
            workload=cifar10_workload(rounds=2, samples_per_class=8, image_size=8),
            clusters=edge_cluster_configs(num_clients=2),
            mode="semi",
            rounds=2,
            seed=1,
            monitor_resources=False,
        )
        result = ExperimentRunner(config).run()
        extras = result.orchestration_extras
        assert extras["semi_quorum_k"] == 2
        assert extras["rounds_closed"] == len(extras["closures"]) >= 1
        document = load_result_json(save_result_json(result, tmp_path / "semi.json"))
        assert document["orchestration_extras"]["rounds_closed"] == extras["rounds_closed"]
