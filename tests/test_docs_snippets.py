"""The documentation is executable: snippets run, the console script answers.

These tests back the CI docs job locally: every fenced Python block in
``README.md`` and ``docs/*.md`` must execute cleanly against the current
code (``scripts/check_doc_snippets.py``), and the CLI entry point must at
least present its help.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_doc_snippets.py"


def test_docs_exist():
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "scheduling.md").is_file()


def test_doc_snippets_run():
    proc = subprocess.run(
        [sys.executable, str(SCRIPT)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ran cleanly" in proc.stdout


@pytest.mark.parametrize("args", [["--help"], ["run", "--help"], ["compare", "--help"]])
def test_cli_help_smoke(args):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro" in proc.stdout


def test_cli_advertises_event_streams():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "run", "--help"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    for flag in ("--event-streams", "--link-bandwidth", "--block-interval", "--mode"):
        assert flag in proc.stdout
