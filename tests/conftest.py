"""Shared fixtures: small datasets, models and federation configurations.

Every fixture is deliberately tiny so the full suite runs in seconds while
still exercising real training, real chain transactions and real storage
transfers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain.account import Account
from repro.chain.blockchain import Blockchain
from repro.core.config import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
    cifar10_workload,
    edge_cluster_configs,
)
from repro.core.contract import UnifyFLContract
from repro.datasets.synthetic import SyntheticCIFAR10, make_classification_dataset
from repro.ipfs.swarm import IPFSSwarm
from repro.ml.models import MLP, SimpleCNN


@pytest.fixture(scope="session")
def tiny_image_dataset():
    """A small synthetic CIFAR-like dataset shared across tests (read-only)."""
    factory = SyntheticCIFAR10(image_size=8, samples_per_class=12, test_samples_per_class=4, seed=7)
    return factory.splits()


@pytest.fixture(scope="session")
def tabular_dataset():
    """A small tabular classification dataset for MLP tests (read-only)."""
    return make_classification_dataset(num_samples=240, num_features=10, num_classes=3, seed=3)


@pytest.fixture()
def small_cnn():
    """A fresh small CNN sized for 8x8 synthetic images."""
    return SimpleCNN(image_size=8, num_classes=10, conv_channels=(4, 8), hidden_dim=16, seed=0)


@pytest.fixture()
def small_mlp():
    """A fresh small MLP for tabular data."""
    return MLP(input_dim=10, hidden_dims=(16,), num_classes=3, seed=0)


@pytest.fixture()
def validator_accounts():
    """Three deterministic validator accounts."""
    return [Account.create(label=f"validator{i}", seed=100 + i) for i in range(3)]


@pytest.fixture()
def blockchain(validator_accounts):
    """A fresh chain with three validators and no contracts."""
    return Blockchain(validator_accounts, block_period=1.0)


@pytest.fixture()
def unifyfl_chain(validator_accounts):
    """A chain with the UnifyFL contract deployed in sync mode."""
    chain = Blockchain(validator_accounts, block_period=1.0)
    chain.deploy_contract(UnifyFLContract(mode="sync", scorer_seed=0))
    return chain


@pytest.fixture()
def ipfs_swarm():
    """A two-node IPFS swarm."""
    swarm = IPFSSwarm()
    swarm.create_node("node-a")
    swarm.create_node("node-b")
    return swarm


@pytest.fixture()
def tiny_workload() -> WorkloadConfig:
    """A minimal CIFAR-style workload for end-to-end tests."""
    return cifar10_workload(rounds=2, samples_per_class=12, image_size=8)


@pytest.fixture()
def tiny_experiment_config(tiny_workload) -> ExperimentConfig:
    """A two-round, three-cluster experiment configuration."""
    return ExperimentConfig(
        name="tiny-test",
        workload=tiny_workload,
        clusters=edge_cluster_configs(num_clients=2),
        mode="sync",
        partitioning="iid",
        rounds=2,
        seed=5,
    )


@pytest.fixture()
def rng():
    """A deterministic random generator for tests that need randomness."""
    return np.random.default_rng(1234)
