"""Tests for baselines, the experiment runner, capabilities and result formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import BaselineResult
from repro.core.capabilities import (
    capability_table,
    format_capability_table,
    sync_async_comparison,
    unifyfl_capabilities,
)
from repro.core.config import ExperimentConfig, cifar10_workload, edge_cluster_configs, gpu_cluster_configs
from repro.core.results import (
    AggregatorResult,
    ExperimentResult,
    format_comparison,
    format_resource_table,
    format_run_table,
)
from repro.core.runner import ExperimentRunner, run_experiment


@pytest.fixture(scope="module")
def shared_sync_result():
    """One small sync experiment reused by several read-only assertions."""
    config = ExperimentConfig(
        name="shared-sync",
        workload=cifar10_workload(rounds=2, samples_per_class=12, image_size=8),
        clusters=edge_cluster_configs(num_clients=2),
        mode="sync",
        partitioning="iid",
        rounds=2,
        seed=3,
    )
    runner = ExperimentRunner(config)
    return runner, runner.run()


class TestExperimentRunner:
    def test_result_has_one_entry_per_cluster(self, shared_sync_result):
        _, result = shared_sync_result
        assert len(result.aggregators) == 3
        assert {a.name for a in result.aggregators} == {"agg1", "agg2", "agg3"}

    def test_metrics_within_bounds(self, shared_sync_result):
        _, result = shared_sync_result
        for aggregator in result.aggregators:
            assert 0.0 <= aggregator.global_accuracy <= 1.0
            assert 0.0 <= aggregator.local_accuracy <= 1.0
            assert aggregator.global_loss > 0
            assert aggregator.total_time > 0
            assert len(aggregator.history) == 2

    def test_chain_and_storage_metrics_populated(self, shared_sync_result):
        _, result = shared_sync_result
        assert result.chain_metrics["blocks_mined"] > 0
        assert result.chain_metrics["transactions_processed"] > 0
        assert result.storage_metrics["stored_bytes"] > 0
        assert result.storage_metrics["transfer_count"] > 0

    def test_resource_reports_cover_all_actors(self, shared_sync_result):
        _, result = shared_sync_result
        assert {"agg", "client", "scorer", "geth", "ipfs"} <= set(result.resource_reports)

    def test_daemon_overhead_is_tiny(self, shared_sync_result):
        """Section 4.2.7: Geth/IPFS footprints are minuscule next to the FL work."""
        _, result = shared_sync_result
        reports = result.resource_reports
        assert reports["geth"].cpu_mean < 1.0
        assert reports["ipfs"].cpu_mean < 10.0
        assert reports["geth"].mem_mean_mb < reports["client"].mem_mean_mb
        assert reports["client"].cpu_mean > reports["agg"].cpu_mean

    def test_experiment_result_helpers(self, shared_sync_result):
        _, result = shared_sync_result
        assert result.aggregator("agg1").name == "agg1"
        with pytest.raises(KeyError):
            result.aggregator("agg9")
        assert 0.0 <= result.mean_global_accuracy <= 1.0
        assert result.max_total_time >= result.mean_total_time

    def test_deterministic_given_seed(self):
        config = ExperimentConfig(
            name="det",
            workload=cifar10_workload(rounds=1, samples_per_class=10, image_size=8),
            clusters=edge_cluster_configs(num_clients=2),
            mode="sync",
            partitioning="iid",
            rounds=1,
            seed=11,
        )
        r1 = run_experiment(config)
        r2 = run_experiment(config)
        assert r1.aggregators[0].global_accuracy == pytest.approx(r2.aggregators[0].global_accuracy)
        assert r1.aggregators[0].total_time == pytest.approx(r2.aggregators[0].total_time)

    def test_async_mode_runs(self):
        config = ExperimentConfig(
            name="async-run",
            workload=cifar10_workload(rounds=1, samples_per_class=10, image_size=8),
            clusters=edge_cluster_configs(num_clients=2),
            mode="async",
            partitioning="dirichlet",
            dirichlet_alpha=0.5,
            rounds=1,
            seed=2,
        )
        result = run_experiment(config)
        assert result.mode == "async"
        assert len(result.aggregators) == 3

    def test_multikrum_scoring_runs_in_sync(self):
        config = ExperimentConfig(
            name="multikrum",
            workload=cifar10_workload(rounds=1, samples_per_class=10, image_size=8),
            clusters=edge_cluster_configs(num_clients=2),
            mode="sync",
            scoring_algorithm="multikrum",
            partitioning="iid",
            rounds=1,
            seed=4,
        )
        result = run_experiment(config)
        assert result.scoring_algorithm == "multikrum"

    def test_gpu_cluster_with_mixed_strategies(self):
        clusters = gpu_cluster_configs(
            num_clusters=2,
            num_clients=2,
            strategies=["fedavg", "fedyogi"],
            policies=[("all", 1), ("top_k", 1)],
        )
        config = ExperimentConfig(
            name="mixed",
            workload=cifar10_workload(rounds=1, samples_per_class=10, image_size=8),
            clusters=clusters,
            mode="sync",
            partitioning="iid",
            rounds=1,
            seed=5,
        )
        result = run_experiment(config)
        strategies = {a.strategy for a in result.aggregators}
        assert strategies == {"fedavg", "fedyogi"}

    def test_partition_label(self):
        config = ExperimentConfig(
            name="label",
            workload=cifar10_workload(rounds=1, samples_per_class=10, image_size=8),
            clusters=edge_cluster_configs(num_clients=2),
            mode="sync",
            partitioning="dirichlet",
            dirichlet_alpha=0.1,
            rounds=1,
            seed=6,
        )
        runner = ExperimentRunner(config)
        result = runner.run()
        assert "0.1" in result.partitioning


class TestBaselines:
    def test_no_collab_baseline(self, shared_sync_result):
        runner, _ = shared_sync_result
        baseline = runner.run_no_collab_baseline(rounds=2)
        assert isinstance(baseline, BaselineResult)
        assert len(baseline.clusters) == 3
        for cluster in baseline.clusters:
            assert 0.0 <= cluster.accuracy <= 1.0
            assert np.isnan(cluster.global_accuracy)

    def test_centralized_baseline_has_global_model(self, shared_sync_result):
        runner, _ = shared_sync_result
        baseline = runner.run_centralized_baseline(rounds=2)
        assert 0.0 <= baseline.global_accuracy <= 1.0
        assert baseline.total_time > 0
        assert len(baseline.global_accuracy_history) == 2
        assert all(c.global_accuracy == baseline.global_accuracy for c in baseline.clusters)

    def test_single_level_baseline(self, shared_sync_result):
        runner, _ = shared_sync_result
        baseline = runner.run_single_level_baseline(rounds=2)
        assert len(baseline.clusters) == 1
        assert 0.0 <= baseline.global_accuracy <= 1.0

    def test_collaboration_beats_isolation(self):
        """The Table 1 shape: centralized collaboration > isolated clusters (NIID)."""
        config = ExperimentConfig(
            name="collab-check",
            workload=cifar10_workload(rounds=8, samples_per_class=24, image_size=8, learning_rate=0.05),
            clusters=edge_cluster_configs(num_clients=2),
            mode="sync",
            partitioning="dirichlet",
            dirichlet_alpha=0.3,
            rounds=8,
            seed=7,
        )
        runner = ExperimentRunner(config)
        no_collab = runner.run_no_collab_baseline(rounds=8)
        collab = runner.run_centralized_baseline(rounds=8)
        mean_isolated = np.mean([c.accuracy for c in no_collab.clusters])
        assert collab.global_accuracy > mean_isolated


class TestCapabilities:
    def test_unifyfl_row_derived_from_code(self):
        row = unifyfl_capabilities()
        assert row.fl_structure == "hierarchical"
        assert row.fl_type == "cross-silo"
        assert set(row.orchestration) == {"sync", "async"}
        assert row.flexible_policies

    def test_table_has_four_frameworks(self):
        rows = capability_table()
        assert [r.name for r in rows] == ["BCFL", "HBFL", "ChainFL", "UnifyFL"]
        assert all(r.orchestration == ["sync"] for r in rows[:3])

    def test_format_capability_table(self):
        text = format_capability_table()
        assert "UnifyFL" in text and "Flexible" in text

    def test_sync_async_comparison_matches_table3(self):
        table = sync_async_comparison()
        assert table["idle_time"] == {"sync": "high", "async": "low", "semi": "bounded"}
        assert table["weight_similarity_scoring"]["async"] == "not supported"
        assert table["weight_similarity_scoring"]["semi"] == "not supported"
        assert len(table) == 7
        assert all(set(row) == {"sync", "async", "semi"} for row in table.values())


class TestResultFormatting:
    def test_format_run_table(self, shared_sync_result):
        _, result = shared_sync_result
        text = format_run_table(result)
        assert "agg1" in text and "Policy" in text
        assert str(result.rounds) in text

    def test_format_resource_table(self, shared_sync_result):
        _, result = shared_sync_result
        text = format_resource_table(result.resource_reports)
        assert "cpu %" in text and "mem (MB)" in text

    def test_format_comparison(self, shared_sync_result):
        _, result = shared_sync_result
        text = format_comparison([result, result], labels=["a", "b"])
        assert "a" in text and "Makespan" in text

    def test_accuracy_and_time_series(self, shared_sync_result):
        _, result = shared_sync_result
        aggregator = result.aggregators[0]
        assert len(aggregator.accuracy_series()) == result.rounds
        assert aggregator.time_series() == sorted(aggregator.time_series())
