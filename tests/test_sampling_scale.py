"""Sampled federations, streaming aggregation and vectorised scoring.

Covers the cross-device-scale layer end to end:

* :class:`~repro.core.sampling.ClientSampler` — seeded, call-order-independent
  cohorts that never perturb the fault plan's churn stream;
* :class:`~repro.ml.tensor_utils.RunningWeightedAverage` — the streaming
  aggregation accumulator, bit-identical to ``average_weights`` in exact mode;
* the vectorised MultiKRUM / cosine ``score_round`` implementations against
  their retained reference loops, with ``==`` per score;
* the lazy cluster factory — sampled experiments materialise O(cohort)
  clusters across every registered mode, reproducibly, and export their
  sampling metadata in the (version 2) JSON document.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import (
    ExperimentConfig,
    cifar10_workload,
    gpu_cluster_configs,
)
from repro.core.reporting import load_result_json, result_to_dict, save_result_json
from repro.core.runner import ExperimentRunner
from repro.core.sampling import ClientSampler
from repro.core.scorer import CosineSimilarityScorer, MultiKRUMScorer
from repro.ml.tensor_utils import RunningWeightedAverage, average_weights
from repro.simnet.faults import FaultPlan


# ------------------------------------------------------------------ sampler
class TestClientSampler:
    def test_cohorts_are_call_order_independent(self):
        natural = ClientSampler(population=1000, cohort_size=16, seed=3)
        shuffled = ClientSampler(population=1000, cohort_size=16, seed=3)
        forward = {r: natural.cohort(r) for r in range(1, 6)}
        for r in (5, 3, 1, 4, 2):
            assert shuffled.cohort(r) == forward[r]

    def test_cohorts_are_memoised_and_well_formed(self):
        sampler = ClientSampler(population=100, cohort_size=10, seed=0)
        cohort = sampler.cohort(2)
        assert sampler.cohort(2) is cohort
        assert len(cohort) == 10
        assert len(set(cohort)) == 10
        assert list(cohort) == sorted(cohort)
        assert all(0 <= i < 100 for i in cohort)

    def test_different_seeds_draw_different_cohorts(self):
        a = ClientSampler(population=10_000, cohort_size=32, seed=0)
        b = ClientSampler(population=10_000, cohort_size=32, seed=1)
        assert any(a.cohort(r) != b.cohort(r) for r in range(1, 4))

    def test_different_rounds_draw_different_cohorts(self):
        sampler = ClientSampler(population=10_000, cohort_size=32, seed=0)
        assert sampler.cohort(1) != sampler.cohort(2)

    def test_rejects_invalid_shapes(self):
        with pytest.raises(ValueError):
            ClientSampler(population=0, cohort_size=1, seed=0)
        with pytest.raises(ValueError):
            ClientSampler(population=10, cohort_size=11, seed=0)
        with pytest.raises(ValueError):
            ClientSampler(population=10, cohort_size=0, seed=0)
        with pytest.raises(ValueError):
            ClientSampler(population=10, cohort_size=5, seed=0).cohort(0)

    def test_cohort_draws_do_not_shift_the_churn_stream(self):
        """Interleaving cohort draws must not move a single churn variate."""
        clusters = [f"agg{i}" for i in range(6)]
        baseline_plan = FaultPlan(seed=7, churn_rate=0.4)
        baseline = {
            (c, r): baseline_plan.cluster_offline(c, r)
            for c in clusters
            for r in range(1, 8)
        }
        interleaved_plan = FaultPlan(seed=7, churn_rate=0.4)
        sampler = ClientSampler(population=5000, cohort_size=64, seed=7)
        for r in range(1, 8):
            sampler.cohort(r)  # the draw the churn stream must not feel
            for c in clusters:
                assert interleaved_plan.cluster_offline(c, r) == baseline[(c, r)]


# ------------------------------------------------- streaming aggregation
def _random_weight_sets(rng, contributors, dtypes=(np.float32, np.float64)):
    shapes = [(4, 3), (7,), (2, 2, 2)]
    sets = []
    for _ in range(contributors):
        sets.append(
            [
                (rng.standard_normal(shape) * 3).astype(dtype)
                for shape, dtype in zip(shapes, list(dtypes) * 2)
            ]
        )
    return sets


class TestRunningWeightedAverage:
    def test_exact_mode_is_bit_identical_to_average_weights(self):
        rng = np.random.default_rng(11)
        for contributors in (1, 2, 5, 9):
            sets = _random_weight_sets(rng, contributors)
            coefficients = [float(c) for c in rng.integers(1, 50, size=contributors)]
            accumulator = RunningWeightedAverage()
            for weights, coefficient in zip(sets, coefficients):
                accumulator.add(weights, coefficient)
            expected = average_weights(sets, coefficients)
            produced = accumulator.finalize()
            assert len(produced) == len(expected)
            for got, want in zip(produced, expected):
                assert got.dtype == want.dtype
                assert np.array_equal(got, want)

    def test_exact_mode_unweighted_matches_plain_average(self):
        rng = np.random.default_rng(5)
        sets = _random_weight_sets(rng, 4)
        accumulator = RunningWeightedAverage()
        for weights in sets:
            accumulator.add(weights)
        expected = average_weights(sets)
        for got, want in zip(accumulator.finalize(), expected):
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

    def test_streaming_mode_matches_a_scalar_reference(self):
        rng = np.random.default_rng(23)
        sets = _random_weight_sets(rng, 6)
        coefficients = [float(c) for c in rng.integers(1, 20, size=6)]
        accumulator = RunningWeightedAverage(exact=False)
        for weights, coefficient in zip(sets, coefficients):
            accumulator.add(weights, coefficient)
        produced = accumulator.finalize()
        exact = average_weights(sets, coefficients)
        total = sum(coefficients)
        for layer in range(len(sets[0])):
            reference = sum(
                np.asarray(sets[i][layer], dtype=np.float64) * coefficients[i]
                for i in range(len(sets))
            ) / total
            assert np.allclose(produced[layer], reference, rtol=1e-6, atol=1e-7)
            # Streaming keeps the promotion rule of the stacked contraction.
            assert produced[layer].dtype == exact[layer].dtype

    def test_streaming_mode_promotes_integer_layers(self):
        accumulator = RunningWeightedAverage(exact=False)
        accumulator.add([np.array([2, 4], dtype=np.int64)])
        accumulator.add([np.array([4, 8], dtype=np.int64)])
        (layer,) = accumulator.finalize()
        exact = average_weights([[np.array([2, 4], dtype=np.int64)], [np.array([4, 8], dtype=np.int64)]])
        assert layer.dtype == exact[0].dtype
        assert np.allclose(layer, [3.0, 6.0])

    def test_error_paths(self):
        accumulator = RunningWeightedAverage()
        with pytest.raises(ValueError):
            accumulator.finalize()
        with pytest.raises(ValueError):
            accumulator.add([np.ones(3)], coefficient=-1.0)
        streaming = RunningWeightedAverage(exact=False)
        streaming.add([np.ones(3)], coefficient=0.0)
        with pytest.raises(ValueError):
            streaming.finalize()


# ------------------------------------------------------ vectorised scoring
def _random_round(rng, n, scale=1.0):
    shapes = [(5, 2), (3,), (2, 4)]
    return {
        f"cid{i:03d}": [
            (rng.standard_normal(shape) * scale).astype(
                np.float32 if i % 2 else np.float64
            )
            for shape in shapes
        ]
        for i in range(n)
    }


class TestVectorisedScorers:
    @pytest.mark.parametrize("tolerance", [0, 1, 3])
    @pytest.mark.parametrize("n", [2, 3, 5, 9, 16])
    def test_multikrum_exactly_matches_the_reference(self, n, tolerance):
        rng = np.random.default_rng(n * 31 + tolerance)
        scorer = MultiKRUMScorer(byzantine_tolerance=tolerance)
        round_weights = _random_round(rng, n)
        fast = scorer.score_round(round_weights)
        slow = scorer.score_round_reference(round_weights)
        assert fast.keys() == slow.keys()
        for cid in fast:
            assert fast[cid] == slow[cid]

    @pytest.mark.parametrize("n", [2, 3, 5, 9, 16])
    def test_cosine_exactly_matches_the_reference(self, n):
        rng = np.random.default_rng(n * 13)
        scorer = CosineSimilarityScorer()
        round_weights = _random_round(rng, n)
        fast = scorer.score_round(round_weights)
        slow = scorer.score_round_reference(round_weights)
        assert fast.keys() == slow.keys()
        for cid in fast:
            assert fast[cid] == slow[cid]

    def test_equality_holds_with_an_outlier_model(self):
        rng = np.random.default_rng(99)
        round_weights = _random_round(rng, 6)
        round_weights["cid_outlier"] = [
            (w * -40.0).astype(w.dtype) for w in round_weights["cid000"]
        ]
        for scorer in (MultiKRUMScorer(byzantine_tolerance=1), CosineSimilarityScorer()):
            fast = scorer.score_round(round_weights)
            slow = scorer.score_round_reference(round_weights)
            for cid in fast:
                assert fast[cid] == slow[cid]
            # The outlier must rank strictly below every honest model.
            honest_floor = min(v for c, v in fast.items() if c != "cid_outlier")
            assert fast["cid_outlier"] < honest_floor

    def test_score_memoises_the_round_analysis(self):
        calls = {"count": 0}

        class CountingScorer(MultiKRUMScorer):
            def score_round(self, round_weights):
                calls["count"] += 1
                return super().score_round(round_weights)

        rng = np.random.default_rng(1)
        round_weights = _random_round(rng, 8)
        scorer = CountingScorer()
        for cid, weights in round_weights.items():
            scorer.score(weights, context={"round_weights": round_weights, "cid": cid})
        assert calls["count"] == 1

        # A different round (different CID set) recomputes exactly once.
        next_round = {f"next{i}": w for i, (_, w) in enumerate(round_weights.items())}
        for cid, weights in next_round.items():
            scorer.score(weights, context={"round_weights": next_round, "cid": cid})
        assert calls["count"] == 2


# ------------------------------------------------------ sampled experiments
def _sampled_config(mode, population=30, cohort=5, rounds=2, seed=0, **overrides):
    kwargs = dict(
        name=f"sampled-{mode}",
        workload=cifar10_workload(rounds=rounds, samples_per_class=8, image_size=8),
        clusters=gpu_cluster_configs(num_clusters=3, num_clients=2),
        mode=mode,
        rounds=rounds,
        seed=seed,
        event_streams=True,
        storage_replicas=2,
        population=population,
        clients_per_round=cohort,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


class TestSampledExperiments:
    @pytest.mark.parametrize("mode", ["sync", "async", "semi", "hierarchical", "gossip"])
    def test_every_mode_runs_sampled_and_materialises_o_cohort(self, mode):
        config = _sampled_config(mode)
        runner = ExperimentRunner(config)
        result = runner.run()
        materialized = int(result.sampling["materialized_clusters"])
        assert materialized == len(runner.aggregators)
        # At most one fresh cohort per round, never the population.
        assert materialized <= config.clients_per_round * config.rounds
        assert materialized < config.population
        assert result.sampling["population"] == float(config.population)
        assert result.sampling["clients_per_round"] == float(config.clients_per_round)
        assert all(a.history for a in result.aggregators)

    def test_sampled_runs_are_reproducible(self):
        first = ExperimentRunner(_sampled_config("sync")).run()
        second = ExperimentRunner(_sampled_config("sync")).run()
        assert result_to_dict(first) == result_to_dict(second)

    def test_sampling_seed_changes_the_cohorts_only_when_set(self):
        default = ExperimentRunner(_sampled_config("sync")).run()
        reseeded = ExperimentRunner(_sampled_config("sync", sampling_seed=99)).run()
        assert {a.name for a in default.aggregators} != {a.name for a in reseeded.aggregators}

    def test_sample_fraction_sets_the_cohort_size(self):
        config = _sampled_config("sync")
        fractional = ExperimentConfig(
            **{
                **{f.name: getattr(config, f.name) for f in config.__dataclass_fields__.values()},
                "clients_per_round": None,
                "sample_fraction": 0.2,
            }
        )
        assert fractional.cohort_size == 6
        result = ExperimentRunner(fractional).run()
        assert result.sampling["clients_per_round"] == 6.0

    def test_json_export_carries_sampling_keys_and_schema_2(self, tmp_path):
        result = ExperimentRunner(_sampled_config("sync")).run()
        path = save_result_json(result, tmp_path / "sampled.json")
        document = load_result_json(path)
        assert document["schema_version"] == 2
        sampling = document["sampling"]
        assert sampling["population"] == 30.0
        assert sampling["clients_per_round"] == 5.0
        assert sampling["materialized_clusters"] >= 5.0

    def test_non_sampled_export_stays_version_1_without_sampling_block(self, tmp_path):
        config = ExperimentConfig(
            name="classic",
            workload=cifar10_workload(rounds=1, samples_per_class=8, image_size=8),
            clusters=gpu_cluster_configs(num_clusters=2, num_clients=2),
            mode="sync",
            rounds=1,
        )
        result = ExperimentRunner(config).run()
        document = load_result_json(save_result_json(result, tmp_path / "classic.json"))
        assert document["schema_version"] == 1
        assert "sampling" not in document


class TestSamplingConfigValidation:
    def _base(self, **overrides):
        kwargs = dict(
            name="validation",
            workload=cifar10_workload(rounds=1, samples_per_class=8, image_size=8),
            clusters=gpu_cluster_configs(num_clusters=2, num_clients=2),
            rounds=1,
        )
        kwargs.update(overrides)
        return ExperimentConfig(**kwargs)

    def test_sampling_knobs_require_population(self):
        with pytest.raises(ValueError):
            self._base(clients_per_round=8)
        with pytest.raises(ValueError):
            self._base(sample_fraction=0.1)
        with pytest.raises(ValueError):
            self._base(sampling_seed=1)

    def test_population_needs_exactly_one_cohort_knob(self):
        with pytest.raises(ValueError):
            self._base(population=100)
        with pytest.raises(ValueError):
            self._base(population=100, clients_per_round=8, sample_fraction=0.1)

    def test_cohort_bounds_are_validated(self):
        with pytest.raises(ValueError):
            self._base(population=100, clients_per_round=101)
        with pytest.raises(ValueError):
            self._base(population=100, sample_fraction=1.5)
        config = self._base(population=100, clients_per_round=8)
        assert config.has_sampling
        assert config.cohort_size == 8
