"""Tests for the single-silo federated-learning substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.partition import IIDPartitioner
from repro.fl.client import Client, ClientConfig, FitResult
from repro.fl.history import RoundMetrics, TrainingHistory
from repro.fl.server import FLServer
from repro.fl.strategy import FedAdagrad, FedAvg, FedYogi, build_strategy
from repro.ml.models import MLP
from repro.ml.tensor_utils import weights_allclose


@pytest.fixture()
def fl_setup(tabular_dataset):
    """Three clients over IID partitions of the tabular dataset, plus a template model."""
    model = MLP(input_dim=10, hidden_dims=(16,), num_classes=3, seed=0)
    parts = IIDPartitioner(3, seed=0).partition(tabular_dataset)
    config = ClientConfig(local_epochs=1, batch_size=16, learning_rate=0.05, seed=1)
    clients = [Client(f"c{i}", model.clone(), p, config=config) for i, p in enumerate(parts)]
    return model, clients, tabular_dataset


class TestClientConfig:
    def test_defaults_match_paper(self):
        config = ClientConfig()
        assert config.local_epochs == 2
        assert config.learning_rate == 0.01

    @pytest.mark.parametrize("field,value", [("local_epochs", 0), ("batch_size", 0), ("learning_rate", 0.0)])
    def test_invalid_values_rejected(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ValueError):
            ClientConfig(**kwargs)


class TestClient:
    def test_fit_returns_all_fields(self, fl_setup):
        model, clients, _ = fl_setup
        result = clients[0].fit(model.get_weights())
        assert isinstance(result, FitResult)
        assert result.num_samples == clients[0].num_samples
        assert "train_loss" in result.metrics
        assert len(result.weights) == len(model.get_weights())

    def test_fit_changes_weights(self, fl_setup):
        model, clients, _ = fl_setup
        initial = model.get_weights()
        result = clients[0].fit(initial)
        assert not weights_allclose(initial, result.weights)

    def test_evaluate_returns_metrics(self, fl_setup):
        model, clients, _ = fl_setup
        metrics = clients[0].evaluate(model.get_weights())
        assert 0.0 <= metrics["accuracy"] <= 1.0
        assert metrics["num_samples"] == clients[0].num_samples

    def test_empty_partition_rejected(self, fl_setup, tabular_dataset):
        model, _, _ = fl_setup
        empty = tabular_dataset.subset(np.array([], dtype=int))
        with pytest.raises(ValueError):
            Client("empty", model.clone(), empty)

    def test_evaluate_prefers_eval_data(self, fl_setup, tabular_dataset):
        model, _, _ = fl_setup
        eval_subset = tabular_dataset.subset(np.arange(10))
        client = Client("c", model.clone(), tabular_dataset, eval_data=eval_subset)
        metrics = client.evaluate(model.get_weights())
        assert metrics["num_samples"] == 10


class TestStrategies:
    def _make_results(self, base_weights, deltas, samples):
        results = []
        for i, (delta, n) in enumerate(zip(deltas, samples)):
            weights = [w + delta for w in base_weights]
            results.append(FitResult(client_id=f"c{i}", weights=weights, num_samples=n))
        return results

    def test_fedavg_weighted_mean(self):
        base = [np.zeros((2, 2))]
        results = self._make_results(base, deltas=[1.0, 3.0], samples=[1, 3])
        aggregated = FedAvg().aggregate(base, results)
        assert np.allclose(aggregated[0], 2.5)

    def test_fedavg_empty_results_keeps_weights(self):
        base = [np.ones((2, 2))]
        aggregated = FedAvg().aggregate(base, [])
        assert weights_allclose(aggregated, base)

    def test_fedavg_uniform_when_equal_samples(self):
        base = [np.zeros(3)]
        results = self._make_results(base, deltas=[2.0, 4.0], samples=[5, 5])
        aggregated = FedAvg().aggregate(base, results)
        assert np.allclose(aggregated[0], 3.0)

    def test_fedyogi_moves_towards_clients(self):
        base = [np.zeros(4)]
        results = self._make_results(base, deltas=[1.0], samples=[1])
        aggregated = FedYogi(learning_rate=0.1).aggregate(base, results)
        assert np.all(aggregated[0] > 0)

    def test_fedadagrad_moves_towards_clients(self):
        base = [np.zeros(4)]
        results = self._make_results(base, deltas=[1.0], samples=[1])
        aggregated = FedAdagrad(learning_rate=0.1).aggregate(base, results)
        assert np.all(aggregated[0] > 0)

    def test_server_opt_strategies_keep_state_across_rounds(self):
        strategy = FedYogi(learning_rate=0.1)
        weights = [np.zeros(2)]
        for _ in range(3):
            results = self._make_results(weights, deltas=[1.0], samples=[1])
            weights = strategy.aggregate(weights, results)
        assert np.all(weights[0] > 0)

    def test_aggregate_weight_sets_with_coefficients(self):
        strategy = FedAvg()
        current = [np.zeros(2)]
        sets = [[np.full(2, 1.0)], [np.full(2, 3.0)]]
        merged = strategy.aggregate_weight_sets(current, sets, coefficients=[0.75, 0.25])
        assert np.allclose(merged[0], 1.5)

    def test_aggregate_weight_sets_coefficient_mismatch(self):
        with pytest.raises(ValueError):
            FedAvg().aggregate_weight_sets([np.zeros(2)], [[np.zeros(2)]], coefficients=[1.0, 2.0])

    def test_build_strategy(self):
        assert isinstance(build_strategy("fedavg"), FedAvg)
        assert isinstance(build_strategy("fedyogi"), FedYogi)
        assert isinstance(build_strategy("FedAdagrad"), FedAdagrad)
        with pytest.raises(ValueError):
            build_strategy("fedprox")


class TestFLServer:
    def test_round_improves_accuracy(self, fl_setup):
        model, clients, dataset = fl_setup
        server = FLServer("s", model.get_weights(), clients, eval_data=dataset, eval_model=model.clone())
        initial = server.evaluate()["accuracy"]
        server.run(5, seed=0)
        assert server.history.final_accuracy > initial

    def test_history_length_matches_rounds(self, fl_setup):
        model, clients, dataset = fl_setup
        server = FLServer("s", model.get_weights(), clients, eval_data=dataset, eval_model=model.clone())
        server.run(3, seed=0)
        assert len(server.history) == 3
        assert server.current_round == 3

    def test_client_fraction_selects_subset(self, fl_setup):
        model, clients, dataset = fl_setup
        server = FLServer("s", model.get_weights(), clients, eval_data=dataset, eval_model=model.clone())
        metrics = server.run_round(client_fraction=0.34, rng=np.random.default_rng(0))
        assert metrics.num_clients == 1

    def test_invalid_fraction(self, fl_setup):
        model, clients, dataset = fl_setup
        server = FLServer("s", model.get_weights(), clients, eval_data=dataset, eval_model=model.clone())
        with pytest.raises(ValueError):
            server.run_round(client_fraction=0.0)

    def test_requires_clients(self, fl_setup):
        model, _, _ = fl_setup
        with pytest.raises(ValueError):
            FLServer("s", model.get_weights(), [])

    def test_evaluate_without_eval_data_uses_clients(self, fl_setup):
        model, clients, _ = fl_setup
        server = FLServer("s", model.get_weights(), clients)
        metrics = server.evaluate()
        assert 0.0 <= metrics["accuracy"] <= 1.0


class TestTrainingHistory:
    def test_final_and_best(self):
        history = TrainingHistory()
        for i, acc in enumerate([0.1, 0.5, 0.3]):
            history.record(RoundMetrics(round_number=i + 1, loss=1.0 - acc, accuracy=acc))
        assert history.final_accuracy == pytest.approx(0.3)
        assert history.best_accuracy == pytest.approx(0.5)
        assert history.final_loss == pytest.approx(0.7)

    def test_rounds_to_reach(self):
        history = TrainingHistory()
        for i, acc in enumerate([0.1, 0.4, 0.6]):
            history.record(RoundMetrics(round_number=i + 1, loss=0.0, accuracy=acc))
        assert history.rounds_to_reach(0.4) == 2
        assert history.rounds_to_reach(0.9) is None

    def test_empty_history(self):
        history = TrainingHistory()
        assert np.isnan(history.final_accuracy)
        assert np.isnan(history.best_accuracy)
        assert history.accuracies() == []
