"""Table 5 — the Tiny-ImageNet workload on the GPU cluster (Runs 1-9).

The paper's Table 5 is a 9-run sweep over orchestration mode, partitioning,
aggregation strategy, scoring algorithm and per-aggregator policies, on a
4-aggregator GPU testbed.  Each test below regenerates one group of runs at
reduced scale and checks the shape the paper reports:

* Run 1 vs Run 2 — Async UnifyFL reaches accuracy comparable to the HBFL
  oracle baseline at a clearly lower runtime (paper: ~4100 s vs ~6200 s).
* Runs 3 & 4 — FedAvg-only and mixed FedAvg/FedYogi federations both work
  under the hardest partitioning (α = 0.1).
* Runs 5 & 6 — heterogeneous per-aggregator policies coexist; the
  non-collaborating *Self* aggregator falls behind its collaborating peers.
* Run 7 — MultiKRUM scoring gives results comparable to accuracy scoring.
* Runs 8 & 9 — under IID data, Sync and Async reach similar accuracy but
  Async finishes substantially earlier.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import GPU_ROUNDS, gpu_experiment, run_once
from repro.core.config import gpu_cluster_configs
from repro.core.results import format_run_table
from repro.core.runner import ExperimentRunner, run_experiment


def test_table5_run1_run2_baseline_vs_async(benchmark, report):
    config = gpu_experiment("table5-run2-async-all", mode="async", alpha=0.5, seed=3)
    runner = ExperimentRunner(config)

    def run():
        baseline = runner.run_centralized_baseline(rounds=GPU_ROUNDS)
        unifyfl = ExperimentRunner(gpu_experiment("table5-run2-async-all", mode="async", alpha=0.5, seed=3)).run()
        return baseline, unifyfl

    baseline, unifyfl = run_once(benchmark, run)

    lines = ["Table 5 Run 1 (HBFL baseline) vs Run 2 (Async UnifyFL, Pick All)"]
    lines.append(f"{'Run':<28}{'Global Acc %':>14}{'Time (s)':>12}")
    lines.append("-" * 54)
    lines.append(f"{'Run 1: HBFL baseline':<28}{baseline.global_accuracy * 100:>14.2f}{baseline.total_time:>12.0f}")
    lines.append(
        f"{'Run 2: Async UnifyFL':<28}{unifyfl.mean_global_accuracy * 100:>14.2f}{unifyfl.max_total_time:>12.0f}"
    )
    lines.append("")
    lines.append(format_run_table(unifyfl))
    lines.append("")
    lines.append("Paper: baseline 36.8 % in 6230 s vs Async UnifyFL ~34 % in ~4100 s.")
    report("\n".join(lines))

    # Comparable accuracy (within a few points at this scale)...
    assert unifyfl.mean_global_accuracy >= baseline.global_accuracy - 0.15
    # ...at a clearly lower runtime (the paper's ~0.66x; accept anything < 0.9x).
    assert unifyfl.max_total_time < 0.9 * baseline.total_time
    # Global model should not trail the locally aggregated models.
    for aggregator in unifyfl.aggregators:
        assert aggregator.global_accuracy >= aggregator.local_accuracy - 0.08


def test_table5_run3_run4_strategy_flexibility(benchmark, report):
    # The paper's hardest partitioning is Dirichlet alpha = 0.1 over 200 classes.
    # At this scale (10 classes, 4 silos) alpha = 0.1 leaves silos with a single
    # class and nothing can be learned; alpha = 0.3 reproduces the intended
    # "severely skewed" regime (documented in EXPERIMENTS.md).
    hard_alpha = 0.3

    def run():
        fedavg_only = run_experiment(
            gpu_experiment(
                "table5-run3-fedavg",
                mode="async",
                alpha=hard_alpha,
                seed=4,
                clusters=gpu_cluster_configs(policies=[("top_k", 2)] * 4, scoring_policies=["mean"] * 4),
            )
        )
        mixed = run_experiment(
            gpu_experiment(
                "table5-run4-mixed-fedyogi",
                mode="async",
                alpha=hard_alpha,
                seed=4,
                clusters=gpu_cluster_configs(
                    strategies=["fedavg", "fedyogi", "fedavg", "fedyogi"],
                    policies=[("top_k", 2)] * 4,
                    scoring_policies=["mean"] * 4,
                ),
            )
        )
        return fedavg_only, mixed

    fedavg_only, mixed = run_once(benchmark, run)
    report(
        format_run_table(fedavg_only)
        + "\n\n"
        + format_run_table(mixed)
        + "\n\nPaper: Runs 3/4 show FedAvg-only and mixed FedAvg+FedYogi federations both "
        "converge under NIID alpha=0.1 (22-28 % accuracy); the mixed run is not degraded."
    )

    assert {a.strategy for a in mixed.aggregators} == {"fedavg", "fedyogi"}
    # Both federations learn (well above the 10% random-guess floor).
    assert fedavg_only.mean_global_accuracy > 0.15
    assert mixed.mean_global_accuracy > 0.15
    # Mixing strategies does not break collaboration (stays within a band of FedAvg-only).
    assert abs(mixed.mean_global_accuracy - fedavg_only.mean_global_accuracy) < 0.25


def test_table5_run5_run6_policy_heterogeneity(benchmark, report):
    policy_mix = [("self", 1), ("top_k", 2), ("top_k", 2), ("top_k", 3)]
    scoring_mix = ["mean", "max", "mean", "mean"]

    def run():
        niid = run_experiment(
            gpu_experiment(
                "table5-run5-policies-niid",
                mode="sync",
                alpha=0.5,
                seed=5,
                clusters=gpu_cluster_configs(policies=policy_mix, scoring_policies=scoring_mix),
            )
        )
        iid = run_experiment(
            gpu_experiment(
                "table5-run6-policies-iid",
                mode="sync",
                partitioning="iid",
                seed=5,
                clusters=gpu_cluster_configs(policies=policy_mix, scoring_policies=scoring_mix),
            )
        )
        return niid, iid

    niid, iid = run_once(benchmark, run)
    report(
        format_run_table(niid)
        + "\n\n"
        + format_run_table(iid)
        + "\n\nPaper: the Self aggregator reaches only ~21-22 % while collaborating "
        "aggregators reach 32-36 %, under both NIID and IID partitioning."
    )

    for result in (niid, iid):
        self_agg = result.aggregator("agg1")
        collaborators = [a for a in result.aggregators if a.name != "agg1"]
        best_collaborator = max(a.global_accuracy for a in collaborators)
        # The non-collaborating cluster falls behind the best collaborating one.
        assert best_collaborator > self_agg.global_accuracy
        # Sync mode: every aggregator reports the same total time.
        times = [a.total_time for a in result.aggregators]
        assert max(times) - min(times) < 1e-6


def test_table5_run7_multikrum_scoring(benchmark, report):
    policy_mix = [("all", 1), ("top_k", 3), ("top_k", 2), ("top_k", 1)]

    def run():
        return run_experiment(
            gpu_experiment(
                "table5-run7-multikrum",
                mode="sync",
                alpha=0.5,
                seed=6,
                scoring_algorithm="multikrum",
                clusters=gpu_cluster_configs(policies=policy_mix),
            )
        )

    result = run_once(benchmark, run)
    report(
        format_run_table(result)
        + "\n\nPaper: MultiKRUM-scored Sync UnifyFL performs on par with accuracy-scored "
        "runs (27-35 % accuracy across aggregators)."
    )

    assert result.scoring_algorithm == "multikrum"
    # The federation still learns under similarity-based scoring.
    assert result.mean_global_accuracy > 0.15
    # Scores were actually produced by the MultiKRUM path for peer models.
    assert all(len(a.history) == GPU_ROUNDS for a in result.aggregators)


def test_table5_run8_run9_sync_vs_async_iid(benchmark, report):
    rounds = 16  # both modes are near their plateau by then, as in the paper's 50 rounds

    def run():
        sync_result = run_experiment(
            gpu_experiment("table5-run8-sync-iid", mode="sync", partitioning="iid", seed=7, rounds=rounds)
        )
        async_result = run_experiment(
            gpu_experiment("table5-run9-async-iid", mode="async", partitioning="iid", seed=7, rounds=rounds)
        )
        return sync_result, async_result

    sync_result, async_result = run_once(benchmark, run)
    report(
        format_run_table(sync_result)
        + "\n\n"
        + format_run_table(async_result)
        + "\n\nPaper: Sync reaches ~37 % in ~6390 s; Async reaches ~37-39 % in ~4100-4260 s "
        "(same accuracy, ~2/3 the runtime)."
    )

    # Accuracy parity between the modes under IID data.  (Our async mode trails
    # sync slightly more than the paper's GPU runs because stale peer models are
    # more costly this far from the plateau; see EXPERIMENTS.md.)
    assert abs(sync_result.mean_global_accuracy - async_result.mean_global_accuracy) < 0.25
    # Async finishes earlier — the headline Sync-vs-Async result.
    assert async_result.max_total_time < 0.9 * sync_result.max_total_time
    # Sync's aggregators share one makespan; Async's spread out.
    sync_times = [a.total_time for a in sync_result.aggregators]
    async_times = [a.total_time for a in async_result.aggregators]
    assert max(sync_times) - min(sync_times) < 1e-6
    assert max(async_times) - min(async_times) > 1.0
