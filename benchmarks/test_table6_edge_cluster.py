"""Table 6 — the CIFAR-10 workload on the heterogeneous edge cluster (C1-C3).

The paper deploys UnifyFL on three aggregators whose client fleets are
Raspberry Pi 400s, Jetson Nanos and Docker containers respectively, all using
the Top-2-by-mean policy:

* Run C1 — Sync, IID: ~59.8 % global accuracy everywhere.
* Run C2 — Sync, NIID α=0.5: 51.3 % global vs 30-35 % local accuracy.
* Run C3 — Async, NIID α=0.5: lower global accuracy (~44 %) but roughly half
  the runtime (≈2100-3200 s vs 4420 s), with per-aggregator times diverging.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import edge_experiment, run_once
from repro.core.results import format_run_table
from repro.core.runner import run_experiment


def test_table6_edge_cluster_runs(benchmark, report):
    def run():
        c1 = run_experiment(edge_experiment("table6-C1-sync-iid", mode="sync", partitioning="iid", seed=8))
        c2 = run_experiment(edge_experiment("table6-C2-sync-niid", mode="sync", alpha=0.5, seed=8))
        c3 = run_experiment(edge_experiment("table6-C3-async-niid", mode="async", alpha=0.5, seed=8))
        return c1, c2, c3

    c1, c2, c3 = run_once(benchmark, run)
    report(
        "\n\n".join(format_run_table(r) for r in (c1, c2, c3))
        + "\n\nPaper: C1 59.8 % (IID sync), C2 51.3 % global vs ~32 % local (NIID sync, 4420 s), "
        "C3 ~44 % at 2100-3200 s (NIID async)."
    )

    # C1 (IID) is the easiest setting — at least as good as the NIID sync run.
    assert c1.mean_global_accuracy >= c2.mean_global_accuracy - 0.05

    # C2: collaboration lifts the global model above the locally aggregated models.
    for aggregator in c2.aggregators:
        assert aggregator.global_accuracy >= aggregator.local_accuracy - 0.05
    gap = c2.mean_global_accuracy - np.mean([a.local_accuracy for a in c2.aggregators])
    assert gap > -0.02

    # C3: async clearly faster than sync on the same NIID workload...
    assert c3.max_total_time < 0.9 * c2.max_total_time
    # ...with heterogeneous per-aggregator completion times (the RPi silo straggles)...
    c3_times = [a.total_time for a in c3.aggregators]
    assert max(c3_times) - min(c3_times) > 1.0
    # ...and accuracy not better than the sync run (limited model availability).
    assert c3.mean_global_accuracy <= c2.mean_global_accuracy + 0.10

    # Sync runs report one shared makespan per federation.
    for result in (c1, c2):
        times = [a.total_time for a in result.aggregators]
        assert max(times) - min(times) < 1e-6
