"""Figure 7 — naive vs smart policies under a Byzantine attacker.

The paper's adversarial scenario: two honest aggregators plus one bad actor
submitting malicious models.  With the naive policy (pick the top-3 models
regardless of reliability) the poisoned model enters every aggregation; with
the smart policy (aggregate only above-average models) the malicious
submissions are filtered out and accuracy recovers.

Reproduced shape: the honest aggregators' accuracy under the smart policy ends
at least as high as under the naive policy, and the attacker's submissions
receive lower scores than honest submissions.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core.config import ClusterConfig, ExperimentConfig, cifar10_workload
from repro.core.runner import ExperimentRunner


def _byzantine_config(policy: str, policy_k: int, seed: int = 11, rounds: int = 12) -> ExperimentConfig:
    clusters = [
        ClusterConfig(name="honest1", num_clients=3, aggregation_policy=policy, policy_k=policy_k),
        ClusterConfig(name="honest2", num_clients=3, aggregation_policy=policy, policy_k=policy_k),
        ClusterConfig(
            name="attacker",
            num_clients=3,
            aggregation_policy=policy,
            policy_k=policy_k,
            malicious=True,
            attack="sign_flip",
        ),
    ]
    return ExperimentConfig(
        name=f"figure7-{policy}",
        workload=cifar10_workload(rounds=rounds, samples_per_class=30, image_size=8, learning_rate=0.05),
        clusters=clusters,
        mode="sync",
        partitioning="iid",
        rounds=rounds,
        seed=seed,
    )


def _honest_series(result):
    honest = [result.aggregator("honest1"), result.aggregator("honest2")]
    return np.mean([agg.accuracy_series() for agg in honest], axis=0)


def test_figure7_naive_vs_smart_policy(benchmark, report):
    def run():
        naive_runner = ExperimentRunner(_byzantine_config("top_k", policy_k=3))
        naive = naive_runner.run()
        smart_runner = ExperimentRunner(_byzantine_config("above_average", policy_k=3))
        smart = smart_runner.run()
        return naive_runner, naive, smart_runner, smart

    naive_runner, naive, smart_runner, smart = run_once(benchmark, run)

    naive_series = _honest_series(naive)
    smart_series = _honest_series(smart)
    times = naive.aggregator("honest1").time_series()

    lines = ["Figure 7 — honest-aggregator accuracy over time under a sign-flip attacker"]
    lines.append(f"{'Round':>6}{'Sim time (s)':>14}{'Naive Top-3 %':>16}{'Smart AboveAvg %':>18}")
    lines.append("-" * 54)
    for i, (t, naive_acc, smart_acc) in enumerate(zip(times, naive_series, smart_series), start=1):
        lines.append(f"{i:>6}{t:>14.0f}{naive_acc * 100:>16.2f}{smart_acc * 100:>18.2f}")
    lines.append("")
    lines.append(
        "Paper (Figure 7): the naive policy keeps absorbing the malicious model and stalls, "
        "while the above-average policy excludes it and recovers to a clearly higher accuracy."
    )
    report("\n".join(lines))

    # Final accuracy: the smart policy clearly beats the naive policy, which keeps
    # absorbing the poisoned model (the Figure 7(a) vs 7(b) separation).
    assert smart_series[-1] > naive_series[-1] + 0.1
    # The smart federation learns something real (well above the 10% floor).
    assert smart_series[-1] > 0.3

    # The attacker's models receive scores no better than honest ones under the smart run.
    records = smart_runner.chain.call("unifyfl", "getLatestModelsWithScores")
    attacker_address = smart_runner.accounts["attacker"].address
    attacker_scores = [s for r in records if r["submitter"] == attacker_address for s in r["scores"].values()]
    honest_scores = [s for r in records if r["submitter"] != attacker_address for s in r["scores"].values()]
    assert attacker_scores and honest_scores
    assert np.mean(attacker_scores) <= np.mean(honest_scores) + 1e-9
