"""Figure 7 — naive vs smart policies under a Byzantine attacker.

The paper's adversarial scenario: two honest aggregators plus one bad actor
submitting malicious models.  With the naive policy (pick the top-3 models
regardless of reliability) the poisoned model enters every aggregation; with
the smart policy (aggregate only above-average models) the malicious
submissions are filtered out and accuracy recovers.

Reproduced shape: the honest aggregators' accuracy under the smart policy ends
at least as high as under the naive policy, and the attacker's submissions
receive lower scores than honest submissions.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.core.config import ClusterConfig, ExperimentConfig, cifar10_workload
from repro.core.runner import ExperimentRunner

OUTPUT_PATH = Path(__file__).parent / "out" / "byzantine_event_streams.json"


def _byzantine_config(
    policy: str, policy_k: int, seed: int = 11, rounds: int = 12, **overrides
) -> ExperimentConfig:
    clusters = [
        ClusterConfig(name="honest1", num_clients=3, aggregation_policy=policy, policy_k=policy_k),
        ClusterConfig(name="honest2", num_clients=3, aggregation_policy=policy, policy_k=policy_k),
        ClusterConfig(
            name="attacker",
            num_clients=3,
            aggregation_policy=policy,
            policy_k=policy_k,
            malicious=True,
            attack="sign_flip",
        ),
    ]
    return ExperimentConfig(
        name=overrides.pop("name", f"figure7-{policy}"),
        workload=cifar10_workload(rounds=rounds, samples_per_class=30, image_size=8, learning_rate=0.05),
        clusters=clusters,
        mode="sync",
        partitioning="iid",
        rounds=rounds,
        seed=seed,
        **overrides,
    )


def _honest_series(result):
    honest = [result.aggregator("honest1"), result.aggregator("honest2")]
    return np.mean([agg.accuracy_series() for agg in honest], axis=0)


def test_figure7_naive_vs_smart_policy(benchmark, report):
    def run():
        naive_runner = ExperimentRunner(_byzantine_config("top_k", policy_k=3))
        naive = naive_runner.run()
        smart_runner = ExperimentRunner(_byzantine_config("above_average", policy_k=3))
        smart = smart_runner.run()
        return naive_runner, naive, smart_runner, smart

    naive_runner, naive, smart_runner, smart = run_once(benchmark, run)

    naive_series = _honest_series(naive)
    smart_series = _honest_series(smart)
    times = naive.aggregator("honest1").time_series()

    lines = ["Figure 7 — honest-aggregator accuracy over time under a sign-flip attacker"]
    lines.append(f"{'Round':>6}{'Sim time (s)':>14}{'Naive Top-3 %':>16}{'Smart AboveAvg %':>18}")
    lines.append("-" * 54)
    for i, (t, naive_acc, smart_acc) in enumerate(zip(times, naive_series, smart_series), start=1):
        lines.append(f"{i:>6}{t:>14.0f}{naive_acc * 100:>16.2f}{smart_acc * 100:>18.2f}")
    lines.append("")
    lines.append(
        "Paper (Figure 7): the naive policy keeps absorbing the malicious model and stalls, "
        "while the above-average policy excludes it and recovers to a clearly higher accuracy."
    )
    report("\n".join(lines))

    # Final accuracy: the smart policy clearly beats the naive policy, which keeps
    # absorbing the poisoned model (the Figure 7(a) vs 7(b) separation).
    assert smart_series[-1] > naive_series[-1] + 0.1
    # The smart federation learns something real (well above the 10% floor).
    assert smart_series[-1] > 0.3

    # The attacker's models receive scores no better than honest ones under the smart run.
    records = smart_runner.chain.call("unifyfl", "getLatestModelsWithScores")
    attacker_address = smart_runner.accounts["attacker"].address
    attacker_scores = [s for r in records if r["submitter"] == attacker_address for s in r["scores"].values()]
    honest_scores = [s for r in records if r["submitter"] != attacker_address for s in r["scores"].values()]
    assert attacker_scores and honest_scores
    assert np.mean(attacker_scores) <= np.mean(honest_scores) + 1e-9


#: fault scenario layered on the Figure-7 federation for the resilience grid:
#: seeded client churn plus staggered replica outages served by failover.
_FAULT_KNOBS = dict(
    churn_rate=0.1,
    replica_outages=2,
    storage_replicas=2,
    replication_mode="lazy",
    outage_duration_s=120.0,
    replica_selection="least-loaded",
)


def test_figure7_under_event_streams_and_faults(benchmark, report):
    """Figure 7 revisited with the middleware under attack *and* under faults.

    Runs the naive/smart policy pair twice — once clean, once with churned
    clients and staggered replica outages on the event-stream fabric — and
    records the 2x2 grid to ``benchmarks/out/byzantine_event_streams.json``.
    The Byzantine separation (smart > naive) must survive the fault load,
    and the faulted runs must show the resilience machinery actually firing.
    """

    def run():
        grid = {}
        for scenario, knobs in (("clean", {}), ("faults", _FAULT_KNOBS)):
            for label, policy in (("naive", "top_k"), ("smart", "above_average")):
                config = _byzantine_config(
                    policy, policy_k=3, rounds=8,
                    name=f"figure7-{label}-{scenario}", **knobs
                )
                grid[(scenario, label)] = ExperimentRunner(config).run()
        return grid

    grid = run_once(benchmark, run)

    rows = []
    for (scenario, label), result in grid.items():
        comm = result.comm_metrics
        rows.append(
            {
                "scenario": scenario,
                "policy": label,
                "honest_accuracy": float(_honest_series(result)[-1]),
                "makespan": max(a.total_time for a in result.aggregators),
                "dropped_clients": comm.get("dropped_clients", 0.0),
                "retries": comm.get("retries", 0.0),
                "failovers": comm.get("failovers", 0.0),
                "breaker_trips": comm.get("breaker_trips", 0.0),
                "fault_outage_s": comm.get("fault_outage_s", 0.0),
            }
        )
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(rows, indent=2), encoding="utf-8")

    lines = ["Figure 7 x fault injection — honest final accuracy per scenario"]
    lines.append(
        f"{'Scenario':<10}{'Policy':<8}{'Honest acc %':>14}{'Makespan (s)':>14}"
        f"{'Dropped':>9}{'Retries':>9}{'Failovers':>11}"
    )
    lines.append("-" * 75)
    for row in rows:
        lines.append(
            f"{row['scenario']:<10}{row['policy']:<8}{row['honest_accuracy'] * 100:>14.2f}"
            f"{row['makespan']:>14.0f}{row['dropped_clients']:>9.0f}"
            f"{row['retries']:>9.0f}{row['failovers']:>11.0f}"
        )
    lines.append(f"(written to {OUTPUT_PATH})")
    report("\n".join(lines))

    by_key = {(r["scenario"], r["policy"]): r for r in rows}
    # The Byzantine separation survives churn and outages.
    assert by_key[("faults", "smart")]["honest_accuracy"] > by_key[("faults", "naive")]["honest_accuracy"]
    # The fault machinery demonstrably fired: clients were dropped and the
    # outages pushed traffic through retry/failover.
    for label in ("naive", "smart"):
        faulted = by_key[("faults", label)]
        assert faulted["dropped_clients"] > 0
        assert faulted["fault_outage_s"] > 0
        assert faulted["retries"] + faulted["failovers"] > 0
    # Clean runs carry zeroed resilience accounting.
    for label in ("naive", "smart"):
        clean = by_key[("clean", label)]
        assert clean["retries"] == 0 and clean["failovers"] == 0
        assert clean["dropped_clients"] == 0
