"""Ablation: how much does the aggregation-policy choice matter?

DESIGN.md calls out policy flexibility as one of UnifyFL's load-bearing design
choices (it is the "Flexibility" column of Table 2 and the mechanism behind
Figure 7).  This ablation runs the same Sync federation four times, with every
organisation using one of *Self*, *All*, *Top-2* and *Above-Average*, and
compares final accuracy and the number of peer models merged per round.

Expected shape: *Self* (no collaboration) is the clear loser; the three
collaborative policies land in the same band, with *All* merging the most
models per round and the score-filtered policies merging fewer without losing
accuracy — which is exactly why offering the choice (rather than hard-coding
*All*, as the related systems do) is defensible.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import edge_experiment, run_once
from repro.core.config import edge_cluster_configs
from repro.core.runner import run_experiment


POLICIES = ["self", "all", "top_k", "above_average"]


def test_ablation_aggregation_policies(benchmark, report):
    rounds = 6

    def run():
        results = {}
        for policy in POLICIES:
            clusters = edge_cluster_configs(num_clients=3, policy=policy, policy_k=2)
            results[policy] = run_experiment(
                edge_experiment(
                    f"ablation-policy-{policy}",
                    mode="sync",
                    alpha=0.3,
                    rounds=rounds,
                    seed=14,
                    clusters=clusters,
                )
            )
        return results

    results = run_once(benchmark, run)

    lines = ["Ablation — aggregation policy (Sync, NIID alpha=0.3, 3 organisations)"]
    lines.append(f"{'Policy':<16}{'Mean Glob Acc %':>16}{'Mean Loc Acc %':>16}{'Models merged/round':>22}")
    lines.append("-" * 70)
    merged_per_round = {}
    for policy, result in results.items():
        merged = np.mean([r.models_pulled for a in result.aggregators for r in a.history[1:]])
        merged_per_round[policy] = merged
        mean_local = np.mean([a.local_accuracy for a in result.aggregators])
        lines.append(
            f"{policy:<16}{result.mean_global_accuracy * 100:>16.2f}{mean_local * 100:>16.2f}{merged:>22.2f}"
        )
    report("\n".join(lines))

    collaborative = {p: results[p] for p in ("all", "top_k", "above_average")}
    # Collaboration beats isolation for every collaborative policy.
    for policy, result in collaborative.items():
        assert result.mean_global_accuracy > results["self"].mean_global_accuracy
    # "All" merges at least as many peer models per round as the filtered policies.
    assert merged_per_round["all"] >= merged_per_round["top_k"] - 1e-9
    assert merged_per_round["all"] >= merged_per_round["above_average"] - 1e-9
    # The filtered policies stay within a reasonable band of "All" — filtering by
    # score does not destroy accuracy (the premise of offering the choice).
    best = max(r.mean_global_accuracy for r in collaborative.values())
    worst = min(r.mean_global_accuracy for r in collaborative.values())
    assert best - worst < 0.30
    # "Self" merges no peer models at all.
    assert merged_per_round["self"] == 0.0
