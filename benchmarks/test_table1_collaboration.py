"""Table 1 — accuracy and loss for the No-Collab and Collab settings.

The paper trains the NIID-partitioned CIFAR-10 workload on the edge cluster
(3 aggregators × 3 clients) twice: once with every cluster isolated
(traditional single-silo FL) and once with a centralized multilevel
aggregator.  The paper's numbers: isolated clusters peak at 31-35 % accuracy
while the collaborative global model reaches 50.4 % with much lower loss.

Expected reproduced shape: each isolated cluster's accuracy is below the
collaborative global model's accuracy, and the collaborative global loss is
the lowest in the table.
"""

from __future__ import annotations

from benchmarks.conftest import EDGE_ROUNDS, edge_experiment, run_once
from repro.core.runner import ExperimentRunner


def test_table1_no_collab_vs_collab(benchmark, report):
    rounds = 10
    config = edge_experiment("table1", partitioning="dirichlet", alpha=0.1, rounds=rounds, seed=1)
    runner = ExperimentRunner(config)

    def run():
        no_collab = runner.run_no_collab_baseline(rounds=rounds)
        collab = runner.run_centralized_baseline(rounds=rounds)
        return no_collab, collab

    no_collab, collab = run_once(benchmark, run)

    lines = ["Table 1 — No Collab vs Collab (NIID CIFAR-10, edge cluster)"]
    lines.append(f"{'Cluster':<22}{'Accuracy (%)':>14}{'Loss':>8}")
    lines.append("-" * 44)
    lines.append("No Collab")
    for cluster in no_collab.clusters:
        lines.append(f"  {cluster.name:<20}{cluster.accuracy * 100:>14.2f}{cluster.loss:>8.2f}")
    lines.append("Collab")
    for cluster in collab.clusters:
        lines.append(f"  {cluster.name:<20}{cluster.accuracy * 100:>14.2f}{cluster.loss:>8.2f}")
    lines.append(f"  {'Global Model':<20}{collab.global_accuracy * 100:>14.2f}{collab.global_loss:>8.2f}")
    lines.append("")
    lines.append("Paper: isolated 31.4-35.2 % vs global 50.4 %; reproduced shape: "
                 "global model above every isolated cluster.")
    report("\n".join(lines))

    # The collaboration gain that motivates the paper must be present.
    best_isolated = max(c.accuracy for c in no_collab.clusters)
    mean_isolated = sum(c.accuracy for c in no_collab.clusters) / len(no_collab.clusters)
    assert collab.global_accuracy > mean_isolated
    assert collab.global_accuracy >= best_isolated - 0.05
    # The global model's loss is the lowest in the table, as in the paper.
    assert collab.global_loss < min(c.loss for c in no_collab.clusters)
