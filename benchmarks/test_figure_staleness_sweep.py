"""Figure-style benchmark — semi-sync staleness sweep.

ROADMAP item: the semi-sync mode was only evaluated qualitatively in the
3-way Table-3 benchmark.  This sweep makes it quantitative: it scans the two
semi-sync knobs — ``semi_quorum_k`` (how many clusters must land a
submission before the logical round closes) and ``max_staleness`` (how long
an open round may wait for them) — over otherwise identical edge-cluster
runs, and reports accuracy, makespan, idle time and how each round closed
(quorum vs staleness expiry).

The sweep runs in two variants (ROADMAP open item): ``constant`` uses the
constant-cost timing path, ``event_streams`` replays the identical grid with
the network/chain event streams on — contended links plus block-interval
finality, so the quorum close itself costs consensus time and even a
``quorum_k=1`` run shows idle waits.  Both variants land in the same JSON
(``benchmarks/out/staleness_sweep.json``) with a ``variant`` key per row, so
the two surfaces can be plotted against each other without re-running.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import edge_experiment, run_once
from repro.core.runner import run_experiment

#: where the sweep's machine-readable results land.
OUTPUT_PATH = Path(__file__).parent / "out" / "staleness_sweep.json"

QUORUMS = (1, 2, 3)
STALENESS_BOUNDS = (40.0, 400.0)
ROUNDS = 3
VARIANTS = {
    "constant": {"event_streams": False},
    "event_streams": {"event_streams": True},
}


def test_semi_staleness_sweep(benchmark, report):
    def run():
        grid = {}
        for variant, extra in VARIANTS.items():
            for quorum_k in QUORUMS:
                for staleness in STALENESS_BOUNDS:
                    result = run_experiment(
                        edge_experiment(
                            f"sweep-{variant}-q{quorum_k}-s{staleness:.0f}",
                            mode="semi",
                            rounds=ROUNDS,
                            seed=2,
                            semi_quorum_k=quorum_k,
                            max_staleness=staleness,
                            **extra,
                        )
                    )
                    grid[(variant, quorum_k, staleness)] = result
        return grid

    grid = run_once(benchmark, run)

    rows = []
    for (variant, quorum_k, staleness), result in grid.items():
        extras = result.orchestration_extras
        rows.append(
            {
                "variant": variant,
                "semi_quorum_k": quorum_k,
                "max_staleness": staleness,
                "mean_global_accuracy": result.mean_global_accuracy,
                "makespan_s": result.max_total_time,
                "total_idle_s": sum(a.idle_time for a in result.aggregators),
                "rounds_closed": extras["rounds_closed"],
                "quorum_closures": extras["quorum_closures"],
                "staleness_closures": extras["staleness_closures"],
                "network_queued_s": result.comm_metrics.get("network_queued", 0.0),
                "chain_wait_s": result.comm_metrics.get("chain_wait", 0.0),
            }
        )

    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(rows, indent=2), encoding="utf-8")

    lines = ["Staleness sweep — accuracy/makespan vs semi_quorum_k and max_staleness"]
    lines.append(
        f"{'variant':>14}{'quorum_k':>9}{'staleness':>11}{'acc %':>8}{'makespan':>10}{'idle':>8}"
        f"{'closed':>8}{'quorum':>8}{'expired':>9}"
    )
    lines.append("-" * 85)
    for row in rows:
        lines.append(
            f"{row['variant']:>14}{row['semi_quorum_k']:>9}{row['max_staleness']:>11.0f}"
            f"{row['mean_global_accuracy'] * 100:>8.2f}{row['makespan_s']:>10.0f}"
            f"{row['total_idle_s']:>8.0f}{row['rounds_closed']:>8}"
            f"{row['quorum_closures']:>8}{row['staleness_closures']:>9}"
        )
    lines.append(f"(written to {OUTPUT_PATH})")
    report("\n".join(lines))

    by_key = {(r["variant"], r["semi_quorum_k"], r["max_staleness"]): r for r in rows}
    for staleness in STALENESS_BOUNDS:
        # quorum_k = 1 in constant mode: the first landed submission closes
        # the round instantly, so no cluster ever blocks waiting for peers.
        assert by_key[("constant", 1, staleness)]["total_idle_s"] == 0.0
        for variant in VARIANTS:
            # A stricter quorum can only add blocking, never remove it.
            assert (
                by_key[(variant, 1, staleness)]["total_idle_s"]
                <= by_key[(variant, 2, staleness)]["total_idle_s"]
                <= by_key[(variant, 3, staleness)]["total_idle_s"]
            )
            # Lower quorums close rounds more often: with k=1 every landing
            # closes a round, stricter quorums batch landings into fewer
            # closures.
            assert (
                by_key[(variant, 1, staleness)]["rounds_closed"]
                >= by_key[(variant, 2, staleness)]["rounds_closed"]
                >= by_key[(variant, 3, staleness)]["rounds_closed"]
            )
    for variant in VARIANTS:
        for quorum_k in QUORUMS:
            tight = by_key[(variant, quorum_k, min(STALENESS_BOUNDS))]
            loose = by_key[(variant, quorum_k, max(STALENESS_BOUNDS))]
            # A tight staleness bound can only close rounds earlier (more
            # expiry closures), bounding how long anyone waits.
            assert tight["staleness_closures"] >= loose["staleness_closures"]
            assert tight["total_idle_s"] <= loose["total_idle_s"] + 1e-9
    for quorum_k in QUORUMS:
        for staleness in STALENESS_BOUNDS:
            constant = by_key[("constant", quorum_k, staleness)]
            streamed = by_key[("event_streams", quorum_k, staleness)]
            # Only the event-stream variant observes chain finality waits;
            # the constant variant never populates comm metrics.
            assert streamed["chain_wait_s"] > 0.0
            assert constant["chain_wait_s"] == 0.0
            assert constant["network_queued_s"] == 0.0
    # Every configuration keeps accuracy in the same band: bounded staleness
    # trades waiting for freshness, not for model quality.
    accuracies = [row["mean_global_accuracy"] for row in rows]
    assert max(accuracies) - min(accuracies) < 0.25
