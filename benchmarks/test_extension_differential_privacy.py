"""Extension experiment: differential privacy on client updates (§5 Q3).

The paper lists Differential Privacy as future work.  The reproduction
implements the standard clip-and-noise mechanism (``repro.fl.privacy``), and
this benchmark measures the privacy/utility trade-off it introduces: the same
Sync federation is run without DP and with two noise levels, and the final
accuracy is compared.

Expected shape: accuracy degrades gracefully as the noise multiplier grows;
moderate noise costs a few points, aggressive noise costs more — while the
orchestration layer (chain, storage, scoring) is untouched because DP is
applied inside the silo before anything is published.
"""

from __future__ import annotations

from benchmarks.conftest import edge_experiment, run_once
from repro.core.config import edge_cluster_configs
from repro.core.runner import run_experiment


#: (label, dp_clip_norm, dp_noise_multiplier)
DP_SETTINGS = [
    ("no-dp", None, 0.0),
    ("dp-moderate", 5.0, 0.02),
    ("dp-aggressive", 2.0, 0.2),
]


def test_extension_differential_privacy(benchmark, report):
    rounds = 6

    def run():
        results = {}
        for label, clip, noise in DP_SETTINGS:
            clusters = edge_cluster_configs(num_clients=3, policy="top_k", policy_k=2)
            for cluster in clusters:
                cluster.dp_clip_norm = clip
                cluster.dp_noise_multiplier = noise
            results[label] = run_experiment(
                edge_experiment(
                    f"extension-{label}",
                    mode="sync",
                    partitioning="iid",
                    rounds=rounds,
                    seed=16,
                    clusters=clusters,
                )
            )
        return results

    results = run_once(benchmark, run)

    lines = ["Extension — differential privacy on client updates (Sync, IID, 6 rounds)"]
    lines.append(f"{'Setting':<16}{'clip':>8}{'noise':>8}{'Mean Glob Acc %':>18}")
    lines.append("-" * 52)
    for (label, clip, noise) in DP_SETTINGS:
        result = results[label]
        lines.append(
            f"{label:<16}{str(clip):>8}{noise:>8}{result.mean_global_accuracy * 100:>18.2f}"
        )
    report("\n".join(lines))

    no_dp = results["no-dp"].mean_global_accuracy
    moderate = results["dp-moderate"].mean_global_accuracy
    aggressive = results["dp-aggressive"].mean_global_accuracy
    # The clean run learns, and DP degrades utility monotonically-ish with noise.
    assert no_dp > 0.3
    assert moderate >= aggressive - 0.05
    assert no_dp >= moderate - 0.05
    # Even aggressive DP does not break the protocol itself (runs to completion,
    # every aggregator reports metrics for every round).
    assert all(len(a.history) == rounds for a in results["dp-aggressive"].aggregators)
