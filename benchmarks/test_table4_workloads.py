"""Table 4 — configuration of the two evaluation workloads.

Regenerates the workload-configuration table from the config dataclasses and
verifies the models actually instantiate with the configured shapes, including
the parameter-count relationship (the CIFAR CNN is the small model, the
VGG-style model is the large one backed by the 138M-parameter reference).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.config import cifar10_workload, tiny_imagenet_workload
from repro.ml.models import build_model


def test_table4_workload_configuration(benchmark, report):
    def build():
        cifar = cifar10_workload()
        tiny = tiny_imagenet_workload()
        cifar_model = build_model(cifar.model, image_size=cifar.image_size, num_classes=cifar.num_classes, seed=0)
        tiny_model = build_model(tiny.model, image_size=tiny.image_size, num_classes=tiny.num_classes, seed=0)
        return cifar, tiny, cifar_model, tiny_model

    cifar, tiny, cifar_model, tiny_model = run_once(benchmark, build)

    rows = [
        ("Task", "Image Classification", "Image Classification"),
        ("Model", cifar.model, tiny.model),
        ("# of Params (substitute)", f"{cifar_model.num_parameters():,}", f"{tiny_model.num_parameters():,}"),
        ("# of Params (paper)", f"{cifar.reference_parameters:,}", f"{tiny.reference_parameters:,}"),
        ("Learning Rate", cifar.learning_rate, tiny.learning_rate),
        ("Rounds (paper)", 100, 50),
        ("Local Epochs", cifar.local_epochs, tiny.local_epochs),
        ("Batch Size", cifar.batch_size, tiny.batch_size),
        ("# of Labels (substitute)", cifar.num_classes, tiny.num_classes),
        ("Testbed", "Edge Cluster", "GPU Cluster"),
    ]
    lines = ["Table 4 — workload configuration", f"{'':<28}{'CIFAR-10':>22}{'Tiny ImageNet':>22}"]
    lines.append("-" * 72)
    for label, a, b in rows:
        lines.append(f"{label:<28}{str(a):>22}{str(b):>22}")
    report("\n".join(lines))

    # Paper hyper-parameters preserved where not scaled.
    assert cifar.learning_rate == 0.01 and tiny.learning_rate == 0.01
    assert cifar.local_epochs == 2 and tiny.local_epochs == 2
    assert cifar.batch_size == 5
    assert cifar.num_classes == 10
    # The model-size relationship holds: the GPU workload's model is the big one.
    assert tiny.reference_parameters > cifar.reference_parameters
    assert tiny_model.num_parameters() > cifar_model.num_parameters()
