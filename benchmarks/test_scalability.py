"""Section 4.2.6 — scalability of UnifyFL with the number of clients.

The paper scales the edge deployment to 60 clients split across the 3
aggregators and reports (i) accuracy in line with the baseline for the same
configuration and (ii) no growth in orchestration overhead, because chain and
storage interactions happen at the cluster level, not per client.

Reproduced shape: growing the per-cluster client count leaves the number of
on-chain transactions and the daemon footprint unchanged, while accuracy stays
within the band of the smaller federation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.config import ExperimentConfig, cifar10_workload, edge_cluster_configs
from repro.core.runner import ExperimentRunner


def _scaled_config(name: str, num_clients: int, rounds: int, seed: int) -> ExperimentConfig:
    """An edge federation whose dataset grows with the client count.

    The paper's 60-client deployment still trains on the full CIFAR-10, so the
    per-client share stays roughly constant; the synthetic dataset is scaled the
    same way here (more clients -> proportionally more samples).
    """
    samples_per_class = 8 * num_clients
    return ExperimentConfig(
        name=name,
        workload=cifar10_workload(
            rounds=rounds, samples_per_class=samples_per_class, image_size=8, learning_rate=0.05
        ),
        clusters=edge_cluster_configs(num_clients=num_clients, policy="top_k", policy_k=2),
        mode="sync",
        partitioning="dirichlet",
        dirichlet_alpha=0.5,
        rounds=rounds,
        seed=seed,
    )


def test_scalability_with_client_count(benchmark, report):
    rounds = 5

    def run():
        small_runner = ExperimentRunner(_scaled_config("scalability-9-clients", 3, rounds, seed=12))
        small = small_runner.run()
        large_runner = ExperimentRunner(_scaled_config("scalability-24-clients", 8, rounds, seed=12))
        large = large_runner.run()
        baseline = large_runner.run_centralized_baseline(rounds=rounds)
        return small, large, baseline

    small, large, baseline = run_once(benchmark, run)

    lines = ["Scalability (Section 4.2.6) — 9 clients vs 24 clients across 3 aggregators"]
    lines.append(f"{'Metric':<34}{'9 clients':>14}{'24 clients':>14}")
    lines.append("-" * 62)
    lines.append(
        f"{'Mean global accuracy %':<34}{small.mean_global_accuracy * 100:>14.2f}{large.mean_global_accuracy * 100:>14.2f}"
    )
    lines.append(
        f"{'Chain transactions':<34}{small.chain_metrics['transactions_processed']:>14.0f}"
        f"{large.chain_metrics['transactions_processed']:>14.0f}"
    )
    lines.append(
        f"{'Chain gas used':<34}{small.chain_metrics['total_gas_used']:>14.0f}"
        f"{large.chain_metrics['total_gas_used']:>14.0f}"
    )
    lines.append(
        f"{'Geth CPU %':<34}{small.resource_reports['geth'].cpu_mean:>14.2f}"
        f"{large.resource_reports['geth'].cpu_mean:>14.2f}"
    )
    lines.append(
        f"{'Baseline (central) accuracy %':<34}{'':>14}{baseline.global_accuracy * 100:>14.2f}"
    )
    lines.append("\nPaper: ~30 % accuracy at 60 clients, on par with the baseline; constant overhead.")
    report("\n".join(lines))

    # Orchestration overhead does not grow with the client count.
    assert large.chain_metrics["transactions_processed"] == pytest.approx(
        small.chain_metrics["transactions_processed"], rel=0.2
    )
    assert large.resource_reports["geth"].cpu_mean == pytest.approx(
        small.resource_reports["geth"].cpu_mean, abs=0.2
    )
    # The larger federation still tracks the centralized baseline for the same setup.
    assert large.mean_global_accuracy >= baseline.global_accuracy - 0.15
    # And scaling clients does not collapse accuracy relative to the small federation.
    assert large.mean_global_accuracy >= small.mean_global_accuracy - 0.15
