"""Thin wrapper for running the perf-trajectory harness from a checkout.

The harness itself lives in :mod:`repro.perf` so the installed ``repro
bench`` console script reaches it too; this file exists so a checkout can
run it directly::

    PYTHONPATH=src python benchmarks/perf_trajectory.py [--quick] [--out BENCH_sched.json]

Deliberately not named ``test_*``: the grid is a measurement, not an
assertion — pytest must not collect it.  The schema smoke test that CI runs
instead is ``tests/test_perf_harness.py``.
"""

from __future__ import annotations

import sys

from repro.perf import main

if __name__ == "__main__":
    sys.exit(main())
