"""Ablation: which scoring algorithms expose a Byzantine submitter?

Section 2.6 motivates supporting several scoring algorithms with different
compute/fidelity trade-offs.  This ablation runs the Figure-7 adversarial
scenario (two honest organisations + one sign-flip attacker, smart
above-average policy) once per scoring algorithm and measures the *score gap*
between honest and malicious submissions — the quantity the smart policy needs
to be positive in order to filter the attacker.

Expected shape: every implemented algorithm (accuracy, loss, MultiKRUM,
cosine) gives honest submissions higher scores than the attacker's, with the
evaluation-based scorers (accuracy, loss) paying the higher scoring cost and
the similarity-based scorers (MultiKRUM, cosine) being cheap — the trade-off
Table 3 and Section 2.6 describe.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core.config import ClusterConfig, ExperimentConfig, cifar10_workload
from repro.core.runner import ExperimentRunner
from repro.core.timing import ClusterTimingModel


ALGORITHMS = ["accuracy", "loss", "multikrum", "cosine"]


def _config(scoring: str, rounds: int = 5) -> ExperimentConfig:
    clusters = [
        ClusterConfig(name="honest1", num_clients=2, aggregation_policy="above_average"),
        ClusterConfig(name="honest2", num_clients=2, aggregation_policy="above_average"),
        ClusterConfig(
            name="attacker", num_clients=2, aggregation_policy="above_average",
            malicious=True, attack="sign_flip",
        ),
    ]
    return ExperimentConfig(
        name=f"ablation-scoring-{scoring}",
        workload=cifar10_workload(rounds=rounds, samples_per_class=24, image_size=8, learning_rate=0.05),
        clusters=clusters,
        mode="sync",
        partitioning="iid",
        scoring_algorithm=scoring,
        rounds=rounds,
        seed=17,
    )


def _score_gap(runner: ExperimentRunner) -> tuple[float, float]:
    records = runner.chain.call("unifyfl", "getLatestModelsWithScores")
    attacker = runner.accounts["attacker"].address
    attacker_scores = [s for r in records if r["submitter"] == attacker for s in r["scores"].values()]
    honest_scores = [s for r in records if r["submitter"] != attacker for s in r["scores"].values()]
    return float(np.mean(honest_scores)), float(np.mean(attacker_scores))


def test_ablation_scoring_algorithms(benchmark, report):
    def run():
        outcome = {}
        for algorithm in ALGORITHMS:
            runner = ExperimentRunner(_config(algorithm))
            result = runner.run()
            honest, malicious = _score_gap(runner)
            outcome[algorithm] = (result, honest, malicious)
        return outcome

    outcome = run_once(benchmark, run)

    timing = ClusterTimingModel(cifar10_workload())
    cluster = ClusterConfig(name="ref", num_clients=2)
    lines = ["Ablation — scoring algorithms under a sign-flip attacker (smart policy)"]
    lines.append(
        f"{'Algorithm':<12}{'Honest score':>14}{'Attacker score':>16}{'Gap':>8}{'Cost/model (s)':>16}"
    )
    lines.append("-" * 66)
    for algorithm in ALGORITHMS:
        _, honest, malicious = outcome[algorithm]
        cost = timing.scoring_time(cluster, 1, algorithm)
        lines.append(
            f"{algorithm:<12}{honest:>14.3f}{malicious:>16.3f}{honest - malicious:>8.3f}{cost:>16.3f}"
        )
    report("\n".join(lines))

    for algorithm in ALGORITHMS:
        _, honest, malicious = outcome[algorithm]
        # Every algorithm ranks honest submissions at or above the attacker's.
        assert honest >= malicious - 1e-9, f"{algorithm} failed to separate the attacker"
    # The similarity-based scorers are the cheap ones, as §2.6 argues.
    eval_cost = timing.scoring_time(cluster, 1, "accuracy")
    for cheap in ("multikrum", "cosine"):
        assert timing.scoring_time(cluster, 1, cheap) < eval_cost
    # The honest federations still learn under every algorithm.
    for algorithm in ALGORITHMS:
        result, _, _ = outcome[algorithm]
        honest_acc = np.mean(
            [result.aggregator("honest1").global_accuracy, result.aggregator("honest2").global_accuracy]
        )
        assert honest_acc > 0.15
