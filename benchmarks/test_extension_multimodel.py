"""Extension experiment: multi-model FL via knowledge distillation (§5 Q1).

The paper's first future-work item is letting organisations with *different*
model architectures collaborate.  The reproduction implements the
distillation-based variant (``repro.ml.distillation`` +
``repro.core.multimodel``); this benchmark measures whether the collaboration
actually transfers knowledge: three organisations with different MLP
architectures — two data-rich, one data-poor — train with and without the
distillation step.

Expected shape: the data-poor organisation's accuracy improves markedly when
collaboration is enabled, while the data-rich organisations are not harmed by
teaching it.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core.multimodel import MultiModelCollaboration, MultiModelParticipant
from repro.datasets.dataloader import train_test_split
from repro.datasets.synthetic import make_classification_dataset
from repro.ml.models import MLP

ROUNDS = 3


def _federation(seed: int) -> MultiModelCollaboration:
    dataset = make_classification_dataset(num_samples=400, num_features=12, num_classes=3, seed=seed)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=seed)
    rich1 = train.subset(np.arange(0, 140))
    rich2 = train.subset(np.arange(140, 280))
    poor = train.subset(np.arange(280, 292))
    participants = [
        MultiModelParticipant("rich-wide", MLP(12, (32,), 3, seed=seed), rich1,
                              learning_rate=0.1, local_epochs=2, distill_alpha=0.7),
        MultiModelParticipant("rich-deep", MLP(12, (16, 16), 3, seed=seed + 1), rich2,
                              learning_rate=0.1, local_epochs=2, distill_alpha=0.7),
        MultiModelParticipant("poor-tiny", MLP(12, (8,), 3, seed=seed + 2), poor,
                              learning_rate=0.1, local_epochs=2, distill_alpha=0.7),
    ]
    return MultiModelCollaboration(participants, eval_data=test, seed=seed)


def test_extension_multimodel_distillation(benchmark, report):
    seeds = [1, 2, 7]

    def run():
        outcomes = []
        for seed in seeds:
            collaborative = _federation(seed)
            isolated = _federation(seed)
            collaborative.run(ROUNDS, collaborate=True)
            isolated.run(ROUNDS, collaborate=False)
            outcomes.append((seed, collaborative.final_accuracies(), isolated.final_accuracies()))
        return outcomes

    outcomes = run_once(benchmark, run)

    lines = ["Extension — multi-model FL via knowledge distillation (3 architectures, 3 seeds)"]
    lines.append(f"{'Seed':>6}{'Org':<14}{'Isolated %':>12}{'Collaborative %':>18}")
    lines.append("-" * 50)
    for seed, collab, isolated in outcomes:
        for name in collab:
            lines.append(f"{seed:>6}{name:<14}{isolated[name] * 100:>12.2f}{collab[name] * 100:>18.2f}")
    report("\n".join(lines))

    poor_gains = [collab["poor-tiny"] - isolated["poor-tiny"] for _, collab, isolated in outcomes]
    rich_deltas = [
        collab[name] - isolated[name]
        for _, collab, isolated in outcomes
        for name in ("rich-wide", "rich-deep")
    ]
    # The data-poor organisation benefits on average and is never badly hurt.
    assert np.mean(poor_gains) > 0.02
    assert min(poor_gains) > -0.05
    # Teaching the poor organisation does not wreck the rich organisations.
    assert np.mean(rich_deltas) > -0.10
