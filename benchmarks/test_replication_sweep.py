"""Figure-style benchmark — replication-policy sweep (mode × replica count).

ROADMAP item "replication is not free": with several storage sites, *how* an
uploaded model reaches the other replicas is a real policy choice with a real
WAN bill.  This sweep runs an otherwise identical contended workload (six GPU
clusters on a throttled LAN, slow WAN between sites) over every
``replication_mode`` × replica count and reports the federation makespan, the
propagation traffic (wire seconds and transfer count) and the download
queueing — the read-your-writes waits included.

The interesting comparison is eager vs lazy: eager pays the full propagation
bill up front but off the consumers' critical path, lazy moves only what is
actually read but makes the first remote consumer wait behind the fetch.
With every model pulled by remote peers (this workload), eager's makespan
catches up with or beats lazy as soon as there is more than one site, while
lazy never moves more bytes than eager — the crossover the middleware
literature predicts for distribution-dominated deployments.

The full grid is written to ``benchmarks/out/replication_sweep.json`` so the
numbers can be plotted without re-running the sweep.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import run_once
from repro.core.config import ExperimentConfig, cifar10_workload, gpu_cluster_configs
from repro.core.runner import run_experiment

#: where the sweep's machine-readable results land.
OUTPUT_PATH = Path(__file__).parent / "out" / "replication_sweep.json"

MODES = ("eager", "lazy", "none")
REPLICA_COUNTS = (1, 2, 3)
ROUNDS = 2
CLUSTERS = 6
#: megabytes per simulated second — LAN throttled far below the GPU profile's
#: 125 MB/s so submissions genuinely contend.
LINK_BANDWIDTH = 0.05
#: slow inter-site WAN: each ~248 KB model costs ~5 s to propagate, so the
#: placement of that cost (background push vs on-demand fetch) is visible in
#: the makespan.
WAN_BANDWIDTH = 0.05
WAN_LATENCY = 0.2


def replication_experiment(mode: str, replicas: int) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"repl-{mode}-r{replicas}",
        workload=cifar10_workload(rounds=ROUNDS, samples_per_class=10, image_size=8, learning_rate=0.05),
        clusters=gpu_cluster_configs(num_clusters=CLUSTERS, num_clients=2),
        mode="async",
        rounds=ROUNDS,
        seed=4,
        event_streams=True,
        link_bandwidth_mbytes_per_s=LINK_BANDWIDTH,
        storage_replicas=replicas,
        replication_mode=mode,
        wan_bandwidth_mbytes_per_s=WAN_BANDWIDTH,
        wan_latency_s=WAN_LATENCY,
        monitor_resources=False,
    )


def test_replication_mode_sweep(benchmark, report):
    def run():
        return {
            (mode, replicas): run_experiment(replication_experiment(mode, replicas))
            for mode in MODES
            for replicas in REPLICA_COUNTS
        }

    grid = run_once(benchmark, run)

    rows = []
    for (mode, replicas), result in grid.items():
        metrics = result.comm_metrics
        rows.append(
            {
                "replication_mode": mode,
                "storage_replicas": replicas,
                "makespan_s": result.max_total_time,
                "replication_count": metrics["replication_count"],
                "replication_time_s": metrics["replication_time"],
                "replication_queued_s": metrics["replication_queued"],
                "download_queued_s": metrics["download_queued"],
                "network_queued_s": metrics["network_queued"],
                "upload_count": metrics["upload_count"],
            }
        )

    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(rows, indent=2), encoding="utf-8")

    lines = ["Replication sweep — makespan/propagation vs mode × storage replicas"]
    lines.append(
        f"{'mode':>7}{'replicas':>9}{'makespan':>10}{'repl xfers':>11}"
        f"{'repl wire':>10}{'dl queued':>10}"
    )
    lines.append("-" * 60)
    for row in rows:
        lines.append(
            f"{row['replication_mode']:>7}{row['storage_replicas']:>9}"
            f"{row['makespan_s']:>10.0f}{row['replication_count']:>11.0f}"
            f"{row['replication_time_s']:>10.1f}{row['download_queued_s']:>10.1f}"
        )
    lines.append(f"(written to {OUTPUT_PATH})")
    report("\n".join(lines))

    by_key = {(r["replication_mode"], r["storage_replicas"]): r for r in rows}

    # With one replica there is nothing to replicate: the three modes are
    # bit-identical and no propagation traffic flows.
    for mode in MODES:
        row = by_key[(mode, 1)]
        assert row["replication_count"] == 0
        assert row["makespan_s"] == by_key[("eager", 1)]["makespan_s"]

    for replicas in REPLICA_COUNTS[1:]:
        eager = by_key[("eager", replicas)]
        lazy = by_key[("lazy", replicas)]
        none = by_key[("none", replicas)]
        # Eager pushes every upload to every peer site — the full bill.
        assert eager["replication_count"] == eager["upload_count"] * (replicas - 1)
        assert eager["replication_time_s"] > 0
        # Lazy moves at most what eager moves (one fetch per object and
        # non-origin site, and only when somebody actually reads it there).
        assert 0 < lazy["replication_count"] <= eager["replication_count"]
        # None never propagates anything, in exchange for origin-pinned reads.
        assert none["replication_count"] == 0
        # The crossover: every model here is read remotely, so paying the WAN
        # bill up front and off the critical path beats paying it on demand.
        assert eager["makespan_s"] <= lazy["makespan_s"]
        # Lazy's on-demand fetches sit in the downloaders' critical path as
        # availability-gate queueing eager mostly hides in the background.
        assert lazy["download_queued_s"] > 0
