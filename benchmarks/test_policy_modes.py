"""Benchmark — 4-way orchestration-mode comparison on a fixed seed.

The round-policy registry makes orchestration modes pluggable; this
benchmark puts the four interesting ones side by side on identical data and
topology: **sync** (lock-step phases), **semi** (quorum/staleness bounded),
**hierarchical** (per-site local rounds, one leader submission per site per
global round) and **gossip** (barrier-free seeded peer exchanges).

All four run with event streams on over a 2-site replicated storage
topology, so the comparison surfaces the *wire* consequences of each
structure: sync pushes every cluster's model cross-site every round, while
hierarchical only ships one leader model per site — its WAN byte count must
come in at or below sync's.  The grid lands in
``benchmarks/out/policy_modes.json`` for plotting.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import edge_experiment, run_once
from repro.core.runner import run_experiment

#: where the comparison's machine-readable results land.
OUTPUT_PATH = Path(__file__).parent / "out" / "policy_modes.json"

MODES = ("sync", "semi", "hierarchical", "gossip")
ROUNDS = 3
SEED = 4
SITES = 2


def test_policy_mode_comparison(benchmark, report):
    def run():
        results = {}
        for mode in MODES:
            results[mode] = run_experiment(
                edge_experiment(
                    f"modes-{mode}",
                    mode=mode,
                    rounds=ROUNDS,
                    seed=SEED,
                    event_streams=True,
                    storage_replicas=SITES,
                    replication_mode="eager",
                )
            )
        return results

    results = run_once(benchmark, run)

    rows = []
    for mode, result in results.items():
        comm = result.comm_metrics
        rows.append(
            {
                "mode": mode,
                "mean_global_accuracy": result.mean_global_accuracy,
                "makespan_s": result.max_total_time,
                "total_idle_s": sum(a.idle_time for a in result.aggregators),
                "wan_bytes": comm["wan_bytes"],
                "upload_count": comm["upload_count"],
                "exchange_count": comm["exchange_count"],
                "replication_count": comm["replication_count"],
                "chain_ops": comm["chain_ops"],
                "network_queued_s": comm["network_queued"],
                "chain_wait_s": comm["chain_wait"],
            }
        )

    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(rows, indent=2), encoding="utf-8")

    lines = [f"Policy-mode comparison — {SITES} sites, {ROUNDS} rounds, seed {SEED}"]
    lines.append(
        f"{'mode':>14}{'acc %':>8}{'makespan':>10}{'idle':>8}{'WAN MB':>9}"
        f"{'uploads':>9}{'exchanges':>11}{'chain ops':>11}"
    )
    lines.append("-" * 80)
    for row in rows:
        lines.append(
            f"{row['mode']:>14}{row['mean_global_accuracy'] * 100:>8.2f}"
            f"{row['makespan_s']:>10.0f}{row['total_idle_s']:>8.0f}"
            f"{row['wan_bytes'] / 1e6:>9.2f}{row['upload_count']:>9.0f}"
            f"{row['exchange_count']:>11.0f}{row['chain_ops']:>11.0f}"
        )
    lines.append(f"(written to {OUTPUT_PATH})")
    report("\n".join(lines))

    by_mode = {row["mode"]: row for row in rows}
    # The headline claim: with >= 2 sites, hierarchical's thin global tier
    # moves no more WAN bytes than sync's everyone-submits-every-round —
    # only one leader model per site crosses the WAN per global round.
    assert by_mode["hierarchical"]["wan_bytes"] <= by_mode["sync"]["wan_bytes"]
    # Structural counters: sync uploads one model per cluster per round
    # (minus stragglers), hierarchical exactly one per site per round.
    assert by_mode["hierarchical"]["upload_count"] == SITES * ROUNDS
    assert by_mode["hierarchical"]["upload_count"] < by_mode["sync"]["upload_count"] + 1
    # Only the peer-exchange modes move exchange traffic.
    assert by_mode["sync"]["exchange_count"] == 0
    assert by_mode["semi"]["exchange_count"] == 0
    assert by_mode["hierarchical"]["exchange_count"] > 0
    # Gossip has no barrier: its clusters idle less than lock-step sync.
    assert by_mode["gossip"]["total_idle_s"] <= by_mode["sync"]["total_idle_s"]
    # Every mode learns something on the shared data (no mode collapses).
    for row in rows:
        assert 0.0 <= row["mean_global_accuracy"] <= 1.0
