"""Ablation: Clique block period vs orchestration overhead.

The paper chooses Clique proof-of-authority "to provide ... faster transaction
validation" (§2.3, §3.4.1).  This ablation quantifies that design choice: the
same Sync federation is run with block periods of 1 s, 2 s (the default) and
15 s (a public-chain-like cadence), and the makespan plus the share of time
spent on chain interactions are compared.

Expected shape: accuracy is unaffected (the chain only orders metadata), while
the makespan grows with the block period — slowly for the edge workload, where
training dominates, which is exactly the paper's argument that a fast private
PoA chain keeps orchestration overhead negligible.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import edge_experiment, run_once
from repro.core.runner import run_experiment


BLOCK_PERIODS = [1.0, 2.0, 15.0]


def test_ablation_block_period(benchmark, report):
    rounds = 4

    def run():
        results = {}
        for period in BLOCK_PERIODS:
            results[period] = run_experiment(
                edge_experiment(
                    f"ablation-block-{period}",
                    mode="sync",
                    partitioning="iid",
                    rounds=rounds,
                    seed=15,
                    block_period=period,
                )
            )
        return results

    results = run_once(benchmark, run)

    lines = ["Ablation — Clique block period (Sync, IID, 3 organisations, 4 rounds)"]
    lines.append(f"{'Block period (s)':<18}{'Makespan (s)':>14}{'Chain time share %':>20}{'Mean Glob Acc %':>18}")
    lines.append("-" * 70)
    chain_share = {}
    for period, result in results.items():
        chain_time = np.sum([r.timing.chain_time for a in result.aggregators for r in a.history])
        active_time = np.sum([r.timing.active_time for a in result.aggregators for r in a.history])
        share = 100.0 * chain_time / active_time
        chain_share[period] = share
        lines.append(
            f"{period:<18}{result.max_total_time:>14.0f}{share:>20.2f}{result.mean_global_accuracy * 100:>18.2f}"
        )
    report("\n".join(lines))

    # Accuracy is independent of the block period (the chain never touches weights).
    accuracies = [r.mean_global_accuracy for r in results.values()]
    assert max(accuracies) - min(accuracies) < 0.1
    # Makespan grows monotonically with the block period...
    makespans = [results[p].max_total_time for p in BLOCK_PERIODS]
    assert makespans[0] <= makespans[1] <= makespans[2]
    # ...and so does the share of time spent waiting on the chain.
    assert chain_share[1.0] <= chain_share[2.0] <= chain_share[15.0]
    # With the paper's fast PoA setting the chain overhead stays small (< 20 %
    # of active time even on this scaled-down workload).
    assert chain_share[2.0] < 20.0
