"""Table 2 — capability comparison of BCFL, HBFL, ChainFL and UnifyFL.

The UnifyFL row is derived from the implemented code (orchestrators and policy
registries) so the regenerated table cannot drift from the implementation.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.capabilities import capability_table, format_capability_table, unifyfl_capabilities


def test_table2_framework_capabilities(benchmark, report):
    rows = run_once(benchmark, capability_table)
    report("Table 2 — framework comparison\n" + format_capability_table())

    by_name = {row.name: row for row in rows}
    unifyfl = by_name["UnifyFL"]
    assert unifyfl == unifyfl_capabilities()
    # UnifyFL is the only hierarchical cross-silo framework with both modes and
    # flexible policies — the differentiation Table 2 makes.
    assert unifyfl.fl_structure == "hierarchical"
    assert unifyfl.fl_type == "cross-silo"
    assert set(unifyfl.orchestration) == {"sync", "async"}
    assert unifyfl.flexible_policies
    for other in ("BCFL", "HBFL", "ChainFL"):
        assert by_name[other].orchestration == ["sync"]
        assert not by_name[other].flexible_policies
