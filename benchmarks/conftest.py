"""Shared configuration helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale: the synthetic datasets are smaller and the round counts lower than the
paper's 50-100 rounds, but the federation structure (number of clusters,
clients per cluster, hardware heterogeneity, policies, orchestration mode) is
the same, so the *shape* of each result — who wins, by roughly what factor,
where the crossovers fall — can be compared directly against the paper's
numbers.  EXPERIMENTS.md records that comparison for a reference run.

The benchmarks use a learning rate of 0.05-0.1 instead of the paper's 0.01:
the scaled-down synthetic workloads need it to converge within the reduced
round budget (documented in DESIGN.md).
"""

from __future__ import annotations

import pytest

from repro.core.config import (
    ExperimentConfig,
    cifar10_workload,
    edge_cluster_configs,
    gpu_cluster_configs,
    tiny_imagenet_workload,
)

#: round budget of the scaled-down benchmark runs.
EDGE_ROUNDS = 8
GPU_ROUNDS = 12


def edge_workload(rounds: int = EDGE_ROUNDS):
    """The scaled CIFAR-10 / CNN workload used for Tables 1, 6, 7 and Figure 7."""
    return cifar10_workload(rounds=rounds, samples_per_class=24, image_size=8, learning_rate=0.05)


def gpu_workload(rounds: int = GPU_ROUNDS):
    """The scaled Tiny-ImageNet / MiniVGG workload used for Table 5."""
    return tiny_imagenet_workload(
        rounds=rounds, samples_per_class=40, num_classes=10, image_size=8, learning_rate=0.1
    )


def edge_experiment(name, mode="sync", partitioning="dirichlet", alpha=0.5, rounds=EDGE_ROUNDS,
                    seed=0, clusters=None, **kwargs) -> ExperimentConfig:
    """An edge-cluster experiment in the paper's 3-aggregator configuration."""
    return ExperimentConfig(
        name=name,
        workload=edge_workload(rounds),
        clusters=clusters if clusters is not None else edge_cluster_configs(num_clients=3, policy="top_k", policy_k=2),
        mode=mode,
        partitioning=partitioning,
        dirichlet_alpha=alpha,
        rounds=rounds,
        seed=seed,
        **kwargs,
    )


def gpu_experiment(name, mode="sync", partitioning="dirichlet", alpha=0.5, rounds=GPU_ROUNDS,
                   seed=0, clusters=None, **kwargs) -> ExperimentConfig:
    """A GPU-cluster experiment in the paper's 4-aggregator configuration.

    Table-5 reproductions compare against the HBFL / no-collab baselines,
    which have no event-stream equivalent, so these runs stay on the
    constant-cost timing path unless a test opts in; the event-stream deltas
    are characterized in docs/performance.md.
    """
    kwargs.setdefault("event_streams", False)
    return ExperimentConfig(
        name=name,
        workload=gpu_workload(rounds),
        clusters=clusters if clusters is not None else gpu_cluster_configs(num_clusters=4, num_clients=3),
        mode=mode,
        partitioning=partitioning,
        dirichlet_alpha=alpha,
        rounds=rounds,
        seed=seed,
        **kwargs,
    )


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture()
def report(capsys):
    """Print a benchmark's regenerated table without pytest capturing it away."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _emit
