"""Table 3 — properties of the Sync and Async orchestration modes.

The paper's Table 3 is qualitative (idle time high vs low, straggler impact
high vs low, access to all weights, weight-similarity scoring support).  This
benchmark backs every row with a measurement from two otherwise identical
edge-cluster runs — one Sync, one Async.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import edge_experiment, run_once
from repro.core.capabilities import sync_async_comparison
from repro.core.config import ExperimentConfig
from repro.core.runner import ExperimentRunner, run_experiment


def test_table3_sync_vs_async_properties(benchmark, report):
    def run():
        sync_result = run_experiment(edge_experiment("table3-sync", mode="sync", rounds=4, seed=2))
        async_result = run_experiment(edge_experiment("table3-async", mode="async", rounds=4, seed=2))
        return sync_result, async_result

    sync_result, async_result = run_once(benchmark, run)

    sync_idle = sum(a.idle_time for a in sync_result.aggregators)
    async_idle = sum(a.idle_time for a in async_result.aggregators)
    sync_models_per_round = np.mean(
        [r.models_pulled for a in sync_result.aggregators for r in a.history[1:]]
    )
    async_models_per_round = np.mean(
        [r.models_pulled for a in async_result.aggregators for r in a.history[1:]]
    )

    table = sync_async_comparison()
    lines = ["Table 3 — Sync vs Async (measured on the edge-cluster workload)"]
    lines.append(f"{'Property':<32}{'Sync':>18}{'Async':>18}")
    lines.append("-" * 68)
    lines.append(f"{'Idle time (s, total)':<32}{sync_idle:>18.0f}{async_idle:>18.0f}")
    lines.append(
        f"{'Makespan (s)':<32}{sync_result.max_total_time:>18.0f}{async_result.max_total_time:>18.0f}"
    )
    lines.append(
        f"{'Peer models seen per round':<32}{sync_models_per_round:>18.2f}{async_models_per_round:>18.2f}"
    )
    for key, row in table.items():
        lines.append(f"{key:<32}{row['sync']:>18}{row['async']:>18}")
    report("\n".join(lines))

    # Idle time: high in Sync, (near) zero in Async.
    assert sync_idle > async_idle
    assert async_idle == 0.0
    # Async is faster end to end.
    assert async_result.max_total_time < sync_result.max_total_time
    # Sync guarantees access to every peer's weights once the pipeline is warm;
    # Async does not necessarily (staggered visibility).
    assert sync_models_per_round >= async_models_per_round
    # Weight-similarity (MultiKRUM) scoring is rejected in Async mode by construction.
    try:
        ExperimentConfig(
            name="invalid",
            workload=edge_experiment("x", rounds=2).workload,
            clusters=edge_experiment("x", rounds=2).clusters,
            mode="async",
            scoring_algorithm="multikrum",
            rounds=2,
        )
        raised = False
    except ValueError:
        raised = True
    assert raised
