"""Table 3 — properties of the Sync, Async and Semi-sync orchestration modes.

The paper's Table 3 is qualitative (idle time high vs low, straggler impact
high vs low, access to all weights, weight-similarity scoring support).  This
benchmark backs every row with a measurement from three otherwise identical
edge-cluster runs — one Sync, one Async, and one Semi-sync (the bounded-
staleness mode added on top of the paper's duality: rounds close on a quorum
of submissions or a staleness bound, placing it between the two extremes).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import edge_experiment, run_once
from repro.core.capabilities import sync_async_comparison
from repro.core.config import ExperimentConfig
from repro.core.runner import ExperimentRunner, run_experiment


def test_table3_sync_vs_async_properties(benchmark, report):
    def run():
        sync_result = run_experiment(edge_experiment("table3-sync", mode="sync", rounds=4, seed=2))
        async_result = run_experiment(edge_experiment("table3-async", mode="async", rounds=4, seed=2))
        semi_result = run_experiment(
            edge_experiment("table3-semi", mode="semi", rounds=4, seed=2, semi_quorum_k=2)
        )
        return sync_result, async_result, semi_result

    sync_result, async_result, semi_result = run_once(benchmark, run)

    sync_idle = sum(a.idle_time for a in sync_result.aggregators)
    async_idle = sum(a.idle_time for a in async_result.aggregators)
    semi_idle = sum(a.idle_time for a in semi_result.aggregators)

    def models_per_round(result):
        return np.mean([r.models_pulled for a in result.aggregators for r in a.history[1:]])

    sync_models_per_round = models_per_round(sync_result)
    async_models_per_round = models_per_round(async_result)
    semi_models_per_round = models_per_round(semi_result)

    table = sync_async_comparison()
    lines = ["Table 3 — Sync vs Async vs Semi-sync (measured on the edge-cluster workload)"]
    lines.append(f"{'Property':<32}{'Sync':>16}{'Semi':>16}{'Async':>16}")
    lines.append("-" * 80)
    lines.append(
        f"{'Idle time (s, total)':<32}{sync_idle:>16.0f}{semi_idle:>16.0f}{async_idle:>16.0f}"
    )
    lines.append(
        f"{'Makespan (s)':<32}{sync_result.max_total_time:>16.0f}"
        f"{semi_result.max_total_time:>16.0f}{async_result.max_total_time:>16.0f}"
    )
    lines.append(
        f"{'Peer models seen per round':<32}{sync_models_per_round:>16.2f}"
        f"{semi_models_per_round:>16.2f}{async_models_per_round:>16.2f}"
    )
    for key, row in table.items():
        lines.append(f"{key:<32}{row['sync']:>16}{row['semi']:>16}{row['async']:>16}")
    report("\n".join(lines))

    # Idle time: high in Sync, (near) zero in Async, bounded in between for
    # Semi-sync (quorum waits exist but are capped by the staleness bound).
    assert sync_idle > async_idle
    assert async_idle == 0.0
    assert async_idle <= semi_idle < sync_idle
    # End-to-end: Async is fastest, Sync slowest, Semi-sync in between.
    assert async_result.max_total_time < sync_result.max_total_time
    assert async_result.max_total_time <= semi_result.max_total_time <= sync_result.max_total_time
    # Sync guarantees access to every peer's weights once the pipeline is warm;
    # the staggered-visibility modes do not necessarily.
    assert sync_models_per_round >= async_models_per_round
    assert sync_models_per_round >= semi_models_per_round
    # Accuracy stays in the same band across all three modes.
    assert abs(semi_result.mean_global_accuracy - sync_result.mean_global_accuracy) < 0.25
    assert abs(semi_result.mean_global_accuracy - async_result.mean_global_accuracy) < 0.25
    # Weight-similarity (MultiKRUM) scoring is rejected outside sync mode by construction.
    for invalid_mode in ("async", "semi"):
        try:
            ExperimentConfig(
                name="invalid",
                workload=edge_experiment("x", rounds=2).workload,
                clusters=edge_experiment("x", rounds=2).clusters,
                mode=invalid_mode,
                scoring_algorithm="multikrum",
                rounds=2,
            )
            raised = False
        except ValueError:
            raised = True
        assert raised


def test_table3_event_stream_comm_accounting(benchmark, report):
    """Table 3 with the network/chain event streams on: per-phase I/O time.

    The constant-cost runs above flatten communication into fixed charges;
    with ``event_streams=True`` every upload/download is a contended link
    event and every contract call waits for block finality, so the same
    three modes can report *where* their communication time actually goes.
    """

    def run():
        return {
            mode: run_experiment(
                edge_experiment(
                    f"table3-es-{mode}",
                    mode=mode,
                    rounds=3,
                    seed=2,
                    event_streams=True,
                    **({"semi_quorum_k": 2} if mode == "semi" else {}),
                )
            )
            for mode in ("sync", "semi", "async")
        }

    results = run_once(benchmark, run)

    def phase_sums(result):
        pull = sum(r.timing.pull_time for a in result.aggregators for r in a.history)
        store = sum(r.timing.store_time for a in result.aggregators for r in a.history)
        chain = sum(r.timing.chain_time for a in result.aggregators for r in a.history)
        return pull, store, chain

    sums = {mode: phase_sums(result) for mode, result in results.items()}
    lines = ["Table 3 (event streams) — per-phase communication / chain-consensus time"]
    lines.append(f"{'Metric (s, summed)':<36}{'Sync':>14}{'Semi':>14}{'Async':>14}")
    lines.append("-" * 78)
    rows = {
        "Model pull (download)": [s[0] for s in sums.values()],
        "Model store (upload)": [s[1] for s in sums.values()],
        "Chain finality wait": [s[2] for s in sums.values()],
        "Link queueing (fabric)": [r.comm_metrics["network_queued"] for r in results.values()],
        "Driver phase-control wait": [
            sum(
                v for k, v in r.comm_metrics.items()
                if k in ("chain_wait_startTraining", "chain_wait_startScoring",
                         "chain_wait_endRound", "chain_wait_closeSemiRound",
                         "chain_wait_configureSemiRound")
            )
            for r in results.values()
        ],
        "Blocks spanned": [r.comm_metrics["chain_blocks_spanned"] for r in results.values()],
        "Makespan": [r.max_total_time for r in results.values()],
    }
    for label, (sync_v, semi_v, async_v) in rows.items():
        lines.append(f"{label:<36}{sync_v:>14.2f}{semi_v:>14.2f}{async_v:>14.2f}")
    report("\n".join(lines))

    for mode, result in results.items():
        metrics = result.comm_metrics
        # Every mode moved models over the fabric and waited on real blocks.
        assert metrics["upload_count"] > 0 and metrics["download_count"] > 0
        assert metrics["chain_wait_submitModel"] > 0
        assert metrics["chain_blocks_spanned"] >= 1
        # Chain time in the round records is the fabric's story, not the
        # constant ``block_period + 0.05 * tx`` charge.
        assert sums[mode][2] > 0
    # Only the phase-driven modes pay driver phase-control finality.
    assert results["sync"].comm_metrics.get("chain_wait_startTraining", 0) > 0
    assert results["semi"].comm_metrics.get("chain_wait_closeSemiRound", 0) > 0
    assert "chain_wait_startTraining" not in results["async"].comm_metrics
    # The big ordering stays: lock-step sync is the slowest end-to-end.  (The
    # async/semi gap is within a couple of block intervals under event
    # streams, so no strict ordering is asserted between those two.)
    assert results["async"].max_total_time <= results["sync"].max_total_time
    assert results["semi"].max_total_time <= results["sync"].max_total_time
