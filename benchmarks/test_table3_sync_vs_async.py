"""Table 3 — properties of the Sync, Async and Semi-sync orchestration modes.

The paper's Table 3 is qualitative (idle time high vs low, straggler impact
high vs low, access to all weights, weight-similarity scoring support).  This
benchmark backs every row with a measurement from three otherwise identical
edge-cluster runs — one Sync, one Async, and one Semi-sync (the bounded-
staleness mode added on top of the paper's duality: rounds close on a quorum
of submissions or a staleness bound, placing it between the two extremes).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import edge_experiment, run_once
from repro.core.capabilities import sync_async_comparison
from repro.core.config import ExperimentConfig
from repro.core.runner import ExperimentRunner, run_experiment


def test_table3_sync_vs_async_properties(benchmark, report):
    def run():
        sync_result = run_experiment(edge_experiment("table3-sync", mode="sync", rounds=4, seed=2))
        async_result = run_experiment(edge_experiment("table3-async", mode="async", rounds=4, seed=2))
        semi_result = run_experiment(
            edge_experiment("table3-semi", mode="semi", rounds=4, seed=2, semi_quorum_k=2)
        )
        return sync_result, async_result, semi_result

    sync_result, async_result, semi_result = run_once(benchmark, run)

    sync_idle = sum(a.idle_time for a in sync_result.aggregators)
    async_idle = sum(a.idle_time for a in async_result.aggregators)
    semi_idle = sum(a.idle_time for a in semi_result.aggregators)

    def models_per_round(result):
        return np.mean([r.models_pulled for a in result.aggregators for r in a.history[1:]])

    sync_models_per_round = models_per_round(sync_result)
    async_models_per_round = models_per_round(async_result)
    semi_models_per_round = models_per_round(semi_result)

    table = sync_async_comparison()
    lines = ["Table 3 — Sync vs Async vs Semi-sync (measured on the edge-cluster workload)"]
    lines.append(f"{'Property':<32}{'Sync':>16}{'Semi':>16}{'Async':>16}")
    lines.append("-" * 80)
    lines.append(
        f"{'Idle time (s, total)':<32}{sync_idle:>16.0f}{semi_idle:>16.0f}{async_idle:>16.0f}"
    )
    lines.append(
        f"{'Makespan (s)':<32}{sync_result.max_total_time:>16.0f}"
        f"{semi_result.max_total_time:>16.0f}{async_result.max_total_time:>16.0f}"
    )
    lines.append(
        f"{'Peer models seen per round':<32}{sync_models_per_round:>16.2f}"
        f"{semi_models_per_round:>16.2f}{async_models_per_round:>16.2f}"
    )
    for key, row in table.items():
        lines.append(f"{key:<32}{row['sync']:>16}{row['semi']:>16}{row['async']:>16}")
    report("\n".join(lines))

    # Idle time: high in Sync, (near) zero in Async, bounded in between for
    # Semi-sync (quorum waits exist but are capped by the staleness bound).
    assert sync_idle > async_idle
    assert async_idle == 0.0
    assert async_idle <= semi_idle < sync_idle
    # End-to-end: Async is fastest, Sync slowest, Semi-sync in between.
    assert async_result.max_total_time < sync_result.max_total_time
    assert async_result.max_total_time <= semi_result.max_total_time <= sync_result.max_total_time
    # Sync guarantees access to every peer's weights once the pipeline is warm;
    # the staggered-visibility modes do not necessarily.
    assert sync_models_per_round >= async_models_per_round
    assert sync_models_per_round >= semi_models_per_round
    # Accuracy stays in the same band across all three modes.
    assert abs(semi_result.mean_global_accuracy - sync_result.mean_global_accuracy) < 0.25
    assert abs(semi_result.mean_global_accuracy - async_result.mean_global_accuracy) < 0.25
    # Weight-similarity (MultiKRUM) scoring is rejected outside sync mode by construction.
    for invalid_mode in ("async", "semi"):
        try:
            ExperimentConfig(
                name="invalid",
                workload=edge_experiment("x", rounds=2).workload,
                clusters=edge_experiment("x", rounds=2).clusters,
                mode=invalid_mode,
                scoring_algorithm="multikrum",
                rounds=2,
            )
            raised = False
        except ValueError:
            raised = True
        assert raised
