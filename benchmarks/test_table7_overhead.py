"""Table 7 — system overhead of running UnifyFL.

The paper reports per-process CPU and memory statistics (scorer, aggregator,
client) plus the constant footprint of the Geth and IPFS daemons (0.2 % CPU /
6 MB and 3.5 % CPU / 19 MB respectively), and notes that the overhead stays
constant when scaling to 60 clients.

Reproduced shape: clients dominate CPU, aggregators dominate memory, the two
daemons are negligible next to the FL work, and none of the daemon numbers
grow with the client count.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import edge_experiment, run_once
from repro.core.config import edge_cluster_configs
from repro.core.results import format_resource_table
from repro.core.runner import ExperimentRunner


def test_table7_system_overhead(benchmark, report):
    def run():
        small = ExperimentRunner(edge_experiment("table7-small", mode="sync", rounds=4, seed=9)).run()
        scaled_clusters = edge_cluster_configs(num_clients=6, policy="top_k", policy_k=2)
        scaled = ExperimentRunner(
            edge_experiment("table7-scaled", mode="sync", rounds=4, seed=9, clusters=scaled_clusters)
        ).run()
        return small, scaled

    small, scaled = run_once(benchmark, run)

    lines = [format_resource_table(small.resource_reports)]
    lines.append("")
    lines.append("Chain / storage counters (small vs 2x-clients run):")
    for key in sorted(small.chain_metrics):
        lines.append(f"  {key:<28}{small.chain_metrics[key]:>14.0f}{scaled.chain_metrics[key]:>14.0f}")
    lines.append(
        "\nPaper: client 61.4 % CPU / 1.8 GB, aggregator 4.1 % CPU / 11.4 GB, scorer 11.4 % CPU / 1 GB, "
        "Geth 0.2 % CPU / 6 MB, IPFS 3.5 % CPU / 19 MB; overhead constant up to 60 clients."
    )
    report("\n".join(lines))

    reports = small.resource_reports
    # Clients are the CPU-hungry processes; aggregators hold the big models in memory.
    assert reports["client"].cpu_mean > reports["agg"].cpu_mean
    assert reports["client"].cpu_mean > reports["scorer"].cpu_mean
    assert reports["agg"].mem_mean_mb > reports["client"].mem_mean_mb
    # Daemon overhead is minuscule relative to the FL work.
    assert reports["geth"].cpu_mean < 1.0
    assert reports["geth"].mem_mean_mb < 10.0
    assert reports["ipfs"].cpu_mean < 10.0
    assert reports["ipfs"].mem_mean_mb < 40.0
    # Scaling the client count does not change the daemon footprint...
    assert scaled.resource_reports["geth"].cpu_mean == pytest.approx(reports["geth"].cpu_mean, abs=0.2)
    assert scaled.resource_reports["ipfs"].mem_mean_mb == pytest.approx(reports["ipfs"].mem_mean_mb, abs=5.0)
    # ...nor the on-chain work (same number of aggregators => same transactions).
    assert scaled.chain_metrics["transactions_processed"] == pytest.approx(
        small.chain_metrics["transactions_processed"], rel=0.2
    )
