"""Figure-style benchmark — storage topology sweep (replicas × capacity).

ROADMAP item "richer topologies": with event streams on, every model moves
through the storage fabric, and a single serial endpoint is a structural
bottleneck — queueing grows with the number of clusters pushing at once.
This sweep quantifies the fix: it scans the number of storage replica sites
and the parallel capacity of each replica over an otherwise identical
contended workload (homogeneous GPU clusters on a throttled link, so
submissions collide), and reports the federation makespan, the total queued
seconds and the per-replica load split.

The full grid is also written to ``benchmarks/out/topology_sweep.json`` so
the numbers can be plotted without re-running the sweep.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.core.config import ExperimentConfig, cifar10_workload, gpu_cluster_configs
from repro.core.runner import run_experiment

#: where the sweep's machine-readable results land.
OUTPUT_PATH = Path(__file__).parent / "out" / "topology_sweep.json"

REPLICA_COUNTS = (1, 2, 3)
CAPACITIES = (1, 2)
ROUNDS = 2
CLUSTERS = 6
#: megabytes per simulated second — throttled far below the GPU profile's
#: 125 MB/s so simultaneous submissions genuinely contend.
LINK_BANDWIDTH = 0.05


def topology_experiment(replicas: int, capacity: int) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"topo-r{replicas}-c{capacity}",
        workload=cifar10_workload(rounds=ROUNDS, samples_per_class=10, image_size=8, learning_rate=0.05),
        clusters=gpu_cluster_configs(num_clusters=CLUSTERS, num_clients=2),
        mode="async",
        rounds=ROUNDS,
        seed=4,
        event_streams=True,
        link_bandwidth_mbytes_per_s=LINK_BANDWIDTH,
        storage_replicas=replicas,
        replica_capacity=capacity,
        monitor_resources=False,
    )


def test_topology_replica_capacity_sweep(benchmark, report):
    def run():
        return {
            (replicas, capacity): run_experiment(topology_experiment(replicas, capacity))
            for replicas in REPLICA_COUNTS
            for capacity in CAPACITIES
        }

    grid = run_once(benchmark, run)

    rows = []
    for (replicas, capacity), result in grid.items():
        metrics = result.comm_metrics
        replica_counts = {
            key[len("replica_"):-len("_count")]: metrics[key]
            for key in metrics
            if key.startswith("replica_") and key.endswith("_count")
        }
        rows.append(
            {
                "storage_replicas": replicas,
                "replica_capacity": capacity,
                "makespan_s": result.max_total_time,
                "network_queued_s": metrics["network_queued"],
                "upload_queued_s": metrics["upload_queued"],
                "download_queued_s": metrics["download_queued"],
                "network_time_s": metrics["network_time"],
                "replica_transfer_counts": replica_counts,
            }
        )

    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(rows, indent=2), encoding="utf-8")

    lines = ["Topology sweep — makespan/queueing vs storage replicas × capacity"]
    lines.append(
        f"{'replicas':>9}{'capacity':>9}{'makespan':>10}{'queued':>9}{'wire':>8}  per-replica transfers"
    )
    lines.append("-" * 72)
    for row in rows:
        split = ", ".join(
            f"{name}:{count:.0f}" for name, count in sorted(row["replica_transfer_counts"].items())
        )
        lines.append(
            f"{row['storage_replicas']:>9}{row['replica_capacity']:>9}"
            f"{row['makespan_s']:>10.0f}{row['network_queued_s']:>9.1f}"
            f"{row['network_time_s']:>8.1f}  {split}"
        )
    lines.append(f"(written to {OUTPUT_PATH})")
    report("\n".join(lines))

    by_key = {(r["storage_replicas"], r["replica_capacity"]): r for r in rows}
    baseline = by_key[(1, 1)]
    # The contended single-endpoint run actually queues — otherwise the sweep
    # proves nothing.
    assert baseline["network_queued_s"] > 0
    for capacity in CAPACITIES:
        # More replica sites strictly relieve the bottleneck on a contended
        # workload, and never hurt the makespan.
        assert (
            by_key[(2, capacity)]["network_queued_s"]
            < by_key[(1, capacity)]["network_queued_s"]
        )
        assert (
            by_key[(3, capacity)]["network_queued_s"]
            <= by_key[(2, capacity)]["network_queued_s"]
        )
        assert by_key[(2, capacity)]["makespan_s"] <= by_key[(1, capacity)]["makespan_s"]
    for replicas in REPLICA_COUNTS:
        # Doubling each replica's parallel capacity can only shorten queues.
        assert (
            by_key[(replicas, 2)]["network_queued_s"]
            <= by_key[(replicas, 1)]["network_queued_s"]
        )
    # Uncontended wire time is capacity-invariant: parallelism removes
    # queueing, it never makes an individual transfer faster.
    for row in rows:
        assert row["network_time_s"] == pytest.approx(baseline["network_time_s"], rel=0.2)
