"""Scalability of the discrete-event scheduling engine with federation size.

The original async orchestration loop re-scanned every aggregator on every
step to find the one with the smallest simulated clock — O(n) per step, so
O(n^2 * r) for n clusters running r rounds.  The heap-backed kernel pops the
earliest event in O(log n).  This benchmark drives both schedulers over an
identical synthetic federation (timing only, no ML) and checks that

1. they produce exactly the same activation order, and
2. the kernel scales: on a federation far larger than the paper's testbeds
   the heap dispatches the same schedule faster than the scan.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.sched.kernel import SimulationKernel
from repro.simnet.clock import SimClock

#: deliberately larger than the paper's 3-4 cluster testbeds.
NUM_CLUSTERS = 800
ROUNDS = 5


def _durations(index: int, rounds: int):
    """Deterministic heterogeneous per-round durations for a synthetic cluster."""
    base = 40.0 + (index * 37 % 997) / 10.0
    return [base * (1.0 + 0.01 * ((index * 7 + r * 11) % 13 - 6)) for r in range(rounds)]


def _make_federation(num_clusters: int, rounds: int):
    return {
        f"agg{i:04d}": {"clock": SimClock(), "durations": _durations(i, rounds)}
        for i in range(num_clusters)
    }


def run_with_scan(num_clusters: int, rounds: int):
    """The pre-refactor algorithm: rescan all runnable clusters every step."""
    clusters = _make_federation(num_clusters, rounds)
    rounds_done = {name: 0 for name in clusters}
    trace = []
    while True:
        runnable = [name for name in clusters if rounds_done[name] < rounds]
        if not runnable:
            break
        name = min(runnable, key=lambda n: (clusters[n]["clock"].now(), n))
        state = clusters[name]
        trace.append((name, state["clock"].now()))
        state["clock"].advance(state["durations"][rounds_done[name]])
        rounds_done[name] += 1
    return trace


def run_with_kernel(num_clusters: int, rounds: int):
    """The same schedule expressed as events on the heap-backed kernel."""
    clusters = _make_federation(num_clusters, rounds)
    rounds_done = {name: 0 for name in clusters}
    kernel = SimulationKernel()
    trace = []

    def activate(name: str) -> None:
        state = clusters[name]
        trace.append((name, state["clock"].now()))
        state["clock"].advance(state["durations"][rounds_done[name]])
        rounds_done[name] += 1
        if rounds_done[name] < rounds:
            kernel.schedule_at(state["clock"].now(), lambda: activate(name), key=name)

    for name, state in clusters.items():
        kernel.schedule_at(state["clock"].now(), lambda n=name: activate(n), key=name)
    kernel.run()
    return trace


def test_scheduler_scales_past_the_paper_testbeds(benchmark, report):
    # Correctness first, at a size where the scan is still cheap: identical
    # activation order, event for event.
    assert run_with_kernel(50, 3) == run_with_scan(50, 3)

    def run():
        start = time.perf_counter()
        scan_trace = run_with_scan(NUM_CLUSTERS, ROUNDS)
        scan_seconds = time.perf_counter() - start
        # Best of three so a scheduling hiccup on a shared CI runner cannot
        # inflate the (milliseconds-scale) kernel measurement past the scan.
        kernel_seconds = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            kernel_trace = run_with_kernel(NUM_CLUSTERS, ROUNDS)
            kernel_seconds = min(kernel_seconds, time.perf_counter() - start)
        return scan_trace, scan_seconds, kernel_trace, kernel_seconds

    scan_trace, scan_seconds, kernel_trace, kernel_seconds = run_once(benchmark, run)

    events = NUM_CLUSTERS * ROUNDS
    lines = [
        f"Scheduler scalability — {NUM_CLUSTERS} clusters x {ROUNDS} rounds ({events} activations)",
        f"{'Scheduler':<28}{'Complexity':>16}{'Wall time (s)':>16}",
        "-" * 60,
        f"{'Per-step scan (pre-refactor)':<28}{'O(n) / step':>16}{scan_seconds:>16.3f}",
        f"{'Event-queue kernel':<28}{'O(log n) / step':>16}{kernel_seconds:>16.3f}",
        f"\nSpeedup: {scan_seconds / max(kernel_seconds, 1e-9):.1f}x at n={NUM_CLUSTERS}",
    ]
    report("\n".join(lines))

    assert kernel_trace == scan_trace
    assert len(kernel_trace) == events
    # The heap must beat the O(n)-per-step scan at this federation size.
    assert kernel_seconds < scan_seconds


def test_sampled_population_materialises_only_cohorts(benchmark, report):
    """Cross-device sampling: a 10k-client federation touches O(cohort) state.

    The full ``sampled_100k`` shape (100k clients, cohort 128, per-leg peak
    RSS in subprocesses) lives in ``repro.perf``; this is its in-suite
    miniature — it runs one sampled experiment end to end and asserts the
    lazy cluster factory materialised only the sampled cohorts, not the
    population.
    """
    from repro.core.config import ExperimentConfig, cifar10_workload, gpu_cluster_configs
    from repro.core.runner import ExperimentRunner

    population, cohort, rounds = 10_000, 32, 2

    def run():
        config = ExperimentConfig(
            name="bench-sampled-10k",
            workload=cifar10_workload(rounds=rounds, samples_per_class=8, image_size=8),
            clusters=gpu_cluster_configs(num_clusters=3, num_clients=2),
            mode="sync",
            rounds=rounds,
            seed=0,
            event_streams=True,
            storage_replicas=2,
            population=population,
            clients_per_round=cohort,
        )
        runner = ExperimentRunner(config)
        runner.build()
        start = time.perf_counter()
        result = runner.run()
        wall = time.perf_counter() - start
        events = len(runner.comm.network.scheduler.log) if runner.comm is not None else 0
        return result, runner, wall, events

    result, runner, wall, events = run_once(benchmark, run)

    materialized = int(result.sampling["materialized_clusters"])
    lines = [
        f"Sampled federation — population {population}, cohort {cohort} x {rounds} rounds",
        f"materialised clusters: {materialized} (population {population})",
        f"fabric events: {events} in {wall:.3f} s ({events / max(wall, 1e-9):.1f} ev/s)",
    ]
    report("\n".join(lines))

    # The population never materialises: at most one cohort per round did.
    assert materialized <= cohort * rounds
    assert materialized < population // 10
    assert len(runner.aggregators) == materialized
    assert result.sampling["population"] == float(population)
    assert result.sampling["clients_per_round"] == float(cohort)
