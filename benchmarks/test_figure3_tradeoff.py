"""Figure 3 — the efficiency vs trustworthiness trade-off.

Figure 3 positions centralized (multilevel) aggregation at the efficient /
less-trustworthy end, peer-to-peer aggregation at the trustworthy /
inefficient end, and motivates UnifyFL as the balance between them.  This
benchmark quantifies both axes on the same workload:

* **Efficiency** — the federation makespan and the number of model
  validations (scoring evaluations) each organisation performs per round.
* **Trustworthiness** — whether a single third party controls aggregation
  (single point of failure) and what fraction of circulating models each
  organisation independently validates.

Expected shape: centralized has the least validation work but a single point
of trust; peer-to-peer validates everything everywhere at the highest cost;
UnifyFL sits between on validation cost while removing the single point of
trust (majority scoring, no central aggregator).
"""

from __future__ import annotations

from dataclasses import dataclass

from benchmarks.conftest import edge_experiment, run_once
from repro.core.config import ClusterConfig
from repro.core.runner import ExperimentRunner
from repro.simnet.hardware import DOCKER_CONTAINER, EDGE_CPU_NODE


@dataclass
class ArchitecturePoint:
    """One point in the efficiency/trust plane."""

    name: str
    makespan: float
    validations_per_org_per_round: float
    has_central_point_of_trust: bool
    fraction_models_validated_per_org: float


def test_figure3_efficiency_vs_trust(benchmark, report):
    rounds = 4
    # Five organisations so the majority scorer subset (N//2 + 1 = 3) is strictly
    # smaller than "everyone validates everyone" (N - 1 = 4), which is where
    # UnifyFL's middle ground in Figure 3 comes from.
    clusters = [
        ClusterConfig(
            name=f"org{i + 1}",
            num_clients=2,
            aggregation_policy="top_k",
            policy_k=2,
            aggregator_profile=EDGE_CPU_NODE,
            client_profile=DOCKER_CONTAINER,
        )
        for i in range(5)
    ]

    def run():
        runner = ExperimentRunner(
            edge_experiment("figure3-unifyfl", mode="sync", rounds=rounds, seed=10, clusters=clusters)
        )
        unifyfl_result = runner.run()
        baseline = runner.run_centralized_baseline(rounds=rounds)
        return runner, unifyfl_result, baseline

    runner, unifyfl_result, baseline = run_once(benchmark, run)

    num_orgs = len(runner.aggregators)
    majority = num_orgs // 2 + 1

    # UnifyFL's measured scoring load: scored models per aggregator per round.
    scored = [
        sum(record.models_scored for record in aggregator.history) / rounds
        for aggregator in runner.aggregators
    ]
    unifyfl_point = ArchitecturePoint(
        name="UnifyFL (decentralized + majority scoring)",
        makespan=unifyfl_result.max_total_time,
        validations_per_org_per_round=sum(scored) / num_orgs,
        has_central_point_of_trust=False,
        fraction_models_validated_per_org=majority / num_orgs,
    )
    centralized_point = ArchitecturePoint(
        name="Centralized multilevel (HBFL oracle)",
        makespan=baseline.total_time,
        validations_per_org_per_round=0.0,
        has_central_point_of_trust=True,
        fraction_models_validated_per_org=0.0,
    )
    # Peer-to-peer: every organisation validates every other organisation's
    # model every round; its makespan is the sync makespan plus the extra
    # validation work that UnifyFL's majority sampling avoids.
    extra_validations = (num_orgs - 1) - unifyfl_point.validations_per_org_per_round
    per_validation_cost = runner.timing_model.scoring_time(runner.config.clusters[0], 1)
    p2p_point = ArchitecturePoint(
        name="Peer-to-peer (validate everything)",
        makespan=unifyfl_result.max_total_time + rounds * extra_validations * per_validation_cost,
        validations_per_org_per_round=float(num_orgs - 1),
        has_central_point_of_trust=False,
        fraction_models_validated_per_org=1.0,
    )

    points = [centralized_point, unifyfl_point, p2p_point]
    lines = ["Figure 3 — efficiency vs trustworthiness (measured)"]
    lines.append(
        f"{'Architecture':<44}{'Makespan':>10}{'Valid/org/rnd':>14}{'Central trust':>14}{'Coverage':>10}"
    )
    lines.append("-" * 92)
    for point in points:
        lines.append(
            f"{point.name:<44}{point.makespan:>10.0f}{point.validations_per_org_per_round:>14.2f}"
            f"{str(point.has_central_point_of_trust):>14}{point.fraction_models_validated_per_org:>10.2f}"
        )
    report("\n".join(lines))

    # Centralized: no validation work but a central point of trust.
    assert centralized_point.has_central_point_of_trust
    assert centralized_point.validations_per_org_per_round == 0.0
    # Peer-to-peer: full validation coverage at the highest validation cost.
    assert p2p_point.fraction_models_validated_per_org == 1.0
    assert p2p_point.validations_per_org_per_round > unifyfl_point.validations_per_org_per_round
    assert p2p_point.makespan >= unifyfl_point.makespan
    # UnifyFL: removes the central point of trust at a validation cost strictly
    # between the two extremes — the balance Figure 3 argues for.
    assert not unifyfl_point.has_central_point_of_trust
    assert 0.0 < unifyfl_point.validations_per_org_per_round < p2p_point.validations_per_org_per_round
    assert 0.0 < unifyfl_point.fraction_models_validated_per_org < 1.0
